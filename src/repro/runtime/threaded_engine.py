"""Real-thread execution engine.

:class:`ThreadedEngine` runs the same operation/graph/routing code as the
simulated engine, but on actual OS threads with blocking queues — each DPS
thread is mapped to one ``threading.Thread``, exactly as the C++ library
maps DPS threads to operating-system threads.  There is no virtual time
and no cluster model; "nodes" are logical placement labels.  Tokens moving
between threads placed on *different* logical nodes are serialized and
deserialized through the real wire format, enforcing that applications
stay serializable (the same reason the paper runs multiple kernels on one
host "for debugging purposes ... it enforces the use of the networking
code").

Use this engine for functional validation and interactive examples; use
:class:`~repro.runtime.sim_engine.SimEngine` for performance studies.
CPython's GIL limits true compute parallelism here, which is exactly why
the performance reproduction lives on the simulated engine (see
DESIGN.md §2).
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple, Union

from ..core.flowcontrol import (
    CreditWindow,
    FlowControlPolicy,
    SplitWindow,
    StreamPolicy,
)
from ..core.graph import Flowgraph
from ..core.ops import (
    CallGraphRequest,
    ChargeRequest,
    NextTokenRequest,
    Operation,
    OpKind,
    PostRequest,
    ScatterCallRequest,
    SleepRequest,
)
from ..core.streams import is_streaming_opener
from ..core.routing import Route, RoutingContext, RoutingPolicy
from ..core.threads import DpsThread, ThreadCollection
from ..serial.token import Token
from ..serial.wire import decode, encode_segments, gather
from .base import DataEnvelope, Engine, GroupFrame, RunResult
from .controller import ScheduleError

import inspect

__all__ = ["ThreadedEngine"]

_STOP = object()


class _ThreadWorker:
    """One DPS thread: an OS thread draining an envelope queue."""

    def __init__(self, engine: "ThreadedEngine", collection: ThreadCollection,
                 index: int, thread_obj: Optional[DpsThread] = None):
        self.engine = engine
        self.collection = collection
        self.index = index
        # An adopted thread object (live state migrated from another
        # kernel) replaces the freshly constructed one.
        self.thread_obj = (thread_obj if thread_obj is not None
                           else collection.make_thread(index))
        self.inbox: "queue.Queue" = queue.Queue()
        self.os_thread = threading.Thread(
            target=self._loop,
            name=f"dps:{collection.name}[{index}]",
            daemon=True,
        )
        self.os_thread.start()

    def _loop(self) -> None:
        while True:
            item = self.inbox.get()
            if item is _STOP:
                return
            try:
                if isinstance(item, DataEnvelope):
                    self.engine._handle_data(self, item)
                elif isinstance(item, tuple) and item[0] == "resume":
                    self.engine._poke_group(self, item[1])
            except BaseException as exc:  # surface to the caller of run()
                self.engine._record_failure(exc)
                return


class _Group:
    __slots__ = (
        "group_id", "buffer", "received", "consumed", "total", "instance",
        "node_id", "parent_frames", "body", "body_gen", "parked", "completed",
        "worker",
    )

    def __init__(self, group_id: int):
        self.group_id = group_id
        self.buffer: Deque[DataEnvelope] = deque()
        self.received = 0
        self.consumed = 0
        self.total: Optional[int] = None
        self.instance: Optional[int] = None
        self.node_id: Optional[int] = None
        self.parent_frames: Optional[Tuple[GroupFrame, ...]] = None
        self.body = None
        self.body_gen = None
        self.parked = False
        self.completed = False
        self.worker: Optional[_ThreadWorker] = None

    @property
    def drained(self) -> bool:
        return self.total is not None and self.consumed == self.total


class _Body:
    __slots__ = ("op", "graph", "node_id", "worker", "ctx_id", "base_frames",
                 "out_group_id", "posted", "shed", "group", "ctx_origin",
                 "started_at")

    def __init__(self, op, graph, node_id, worker, ctx_id, base_frames,
                 group=None, ctx_origin=None):
        self.op = op
        self.graph = graph
        self.node_id = node_id
        self.worker = worker
        self.ctx_id = ctx_id
        self.base_frames = base_frames
        self.out_group_id: Optional[int] = None
        self.posted = 0
        #: posts dropped by a lossy credit window; excluded from the
        #: announced group total so the merge still terminates exactly.
        self.shed = 0
        self.group = group
        #: Kernel owning the activation's result queue (multiprocess
        #: runtime); ``None`` on the single-process engines.
        self.ctx_origin = ctx_origin
        self.started_at = 0.0

    @property
    def kind(self):
        return self.graph.node(self.node_id).kind

    @property
    def opens_group(self):
        return self.kind in (OpKind.SPLIT, OpKind.STREAM)


class ThreadedEngine(Engine):
    """Execute DPS schedules on real OS threads with blocking queues."""

    def __init__(self, policy: Optional[FlowControlPolicy] = None,
                 serialize_transfers: bool = True,
                 tracer: Optional[Any] = None,
                 metrics: Optional[Any] = None,
                 routing: Optional[RoutingPolicy] = None,
                 stream: Optional[StreamPolicy] = None):
        super().__init__(policy=policy, tracer=tracer, metrics=metrics,
                         stream=stream)
        #: Engine-wide routing policy: ``queue_depth`` substitutes the
        #: adaptive :class:`~repro.core.routing.QueueDepthRoute` for
        #: declared round-robin/load-balanced routing sites.
        self.routing = routing if routing is not None else RoutingPolicy()
        #: Serialize tokens crossing logical node boundaries (wire-format
        #: round trip), as the DPS debugging kernels do.
        self.serialize_transfers = serialize_transfers
        self._lock = threading.RLock()
        self._workers: Dict[Tuple[int, int], _ThreadWorker] = {}
        self._groups: Dict[int, _Group] = {}
        self._windows: Dict[Tuple[str, int, int], SplitWindow] = {}
        self._pending: Dict[Tuple[str, int, int],
                            Deque[Tuple[DataEnvelope, Optional[threading.Event]]]] = {}
        self._routes: Dict[Tuple[str, int], Route] = {}
        self._group_counter = 0
        self._ctx_counter = 0
        self._results: Dict[int, "queue.Queue"] = {}
        #: ctx_id -> [on_token, delivered, total, done_event] for scatter calls
        self._scatters: Dict[int, list] = {}
        self._failure: Optional[BaseException] = None
        self._closed = False
        #: Kernel name stamped on activations this engine starts; ``None``
        #: keeps results local (the multiprocess kernel overrides it).
        self._origin_name: Optional[str] = None
        #: Split-boundary replay hooks, populated only by the
        #: recovery-enabled distributed kernel: a
        #: :class:`~repro.net.recovery.TokenJournal` of un-acked emitted
        #: tokens and a :class:`~repro.net.recovery.ReplayDedup`
        #: admitting each (group, index) frame at non-leaf inputs once.
        self._journal = None
        self._dedup = None

    # ------------------------------------------------------------------
    # lifecycle (registration comes from the shared Engine base; the old
    # per-engine register_graph spelling with its "accepted for SimEngine
    # parity" app_name shim is deprecated in favour of the base method)
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Stop all worker threads (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
        for w in workers:
            w.inbox.put(_STOP)
        for w in workers:
            w.os_thread.join(timeout=5)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, graph: Union[Flowgraph, str], token: Token,
            timeout: float = 60.0) -> Token:
        """Run one activation to completion; returns the result token."""
        if isinstance(graph, str):
            graph = self.graph(graph)
        elif graph.name not in self._graphs:
            self.register_graph(graph)
        entry = graph.node(graph.entry)
        if graph.scatter:
            raise ScheduleError(
                f"scatter graph {graph.name!r} must be invoked through "
                f"call_scatter() from a split/stream operation"
            )
        if not entry.op_class.accepts(type(token)):
            raise ScheduleError(
                f"graph {graph.name!r} entry does not accept "
                f"{type(token).__name__}"
            )
        failure = self._failure
        if failure is not None:
            # A worker (or remote kernel) already died; every subsequent
            # activation would hang on its queue — fail fast instead.
            raise ScheduleError(
                "engine has failed; shut it down and create a new one"
            ) from failure
        with self._lock:
            self._ctx_counter += 1
            ctx_id = self._ctx_counter
            result_q: "queue.Queue" = queue.Queue()
            self._results[ctx_id] = result_q
            route = self._route_for(graph, graph.entry, entry, None)
            instance = route(token)
        if self.tracer is not None:
            self.trace("activation_start", graph=graph.name,
                       driver=entry.collection.node_of(instance))
        env = DataEnvelope(token, graph, graph.entry, instance, ctx_id, (),
                           ctx_origin=self._origin_name)
        started_at = time.monotonic()
        self._deliver(env)
        try:
            outcome = result_q.get(timeout=timeout)
        except queue.Empty:
            failure = self._failure
            if failure is not None:
                raise failure
            raise ScheduleError(
                f"graph {graph.name!r} did not complete within {timeout}s; "
                f"likely a routing bug or flow-control deadlock"
            ) from None
        finally:
            with self._lock:
                self._results.pop(ctx_id, None)
        if isinstance(outcome, BaseException):
            raise outcome
        if self.tracer is not None:
            self.trace("activation_done", ctx=ctx_id)
        self.last_result = RunResult(outcome, started_at, time.monotonic())
        return outcome

    def _run_scatter(self, request: ScatterCallRequest, body: _Body) -> int:
        """Run a remote scatter graph; its outputs become *body*'s posts."""
        graph = self.graph(request.graph_name)
        if not graph.scatter:
            raise ScheduleError(
                f"graph {request.graph_name!r} is not a scatter graph"
            )
        entry = graph.node(graph.entry)
        done = threading.Event()
        with self._lock:
            self._ctx_counter += 1
            ctx_id = self._ctx_counter
            self._scatters[ctx_id] = [
                lambda tok, b=body: self._emit(b, PostRequest(tok)),
                0, None, done,
            ]
            route = self._route_for(graph, graph.entry, entry, None)
            instance = route(request.token)
        if self.tracer is not None:
            self.trace("activation_start", graph=graph.name,
                       driver=entry.collection.node_of(instance))
        env = DataEnvelope(request.token, graph, graph.entry, instance,
                           ctx_id, (), ctx_origin=self._origin_name)
        self._deliver(env)
        completed = done.wait(timeout=60)
        failure = self._failure
        if failure is not None:
            raise failure
        if not completed:
            raise ScheduleError(
                f"scatter call {request.graph_name!r} did not complete"
            )
        with self._lock:
            state = self._scatters.pop(ctx_id)
        if self.tracer is not None:
            self.trace("activation_done", ctx=ctx_id, scatter=True)
        return state[2]

    def _scatter_token(self, ctx_id: int, token: Token) -> None:
        with self._lock:
            state = self._scatters.get(ctx_id)
            if state is None:
                raise ScheduleError(f"scatter result for unknown ctx {ctx_id}")
        state[0](token)
        with self._lock:
            state[1] += 1
            if state[2] is not None and state[1] >= state[2]:
                state[3].set()

    def scatter_total(self, ctx_id: int, total: int) -> None:
        with self._lock:
            state = self._scatters.get(ctx_id)
            if state is None:
                raise ScheduleError(f"scatter total for unknown ctx {ctx_id}")
            state[2] = total
            if state[1] >= total:
                state[3].set()

    def _record_failure(self, exc: BaseException,
                        propagate: bool = True) -> None:
        with self._lock:
            if self._failure is None:
                self._failure = exc
            queues = list(self._results.values())
            scatter_events = [state[3] for state in self._scatters.values()]
        for q in queues:
            q.put(exc)
        # Wake scatter callers parked on their done events; they re-check
        # self._failure after the wait and re-raise.
        for event in scatter_events:
            event.set()
        if propagate:
            self._propagate_failure(exc)

    def _propagate_failure(self, exc: BaseException) -> None:
        """Hook: forward a local failure to remote kernels (no-op here)."""

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _worker_for(self, collection: ThreadCollection, index: int) -> _ThreadWorker:
        with self._lock:
            key = (id(collection), index)
            worker = self._workers.get(key)
            if worker is None:
                worker = _ThreadWorker(self, collection, index)
                self._workers[key] = worker
            return worker

    def _evict_thread(self, collection: ThreadCollection,
                      index: int) -> Optional[DpsThread]:
        """Stop instance *index*'s worker and surrender its thread object.

        Only valid while the engine is quiesced (no active activations):
        the worker drains whatever is already queued before stopping, but
        nothing may be routing new tokens at it.  Returns ``None`` when
        the instance was never activated here (no state to migrate).
        """
        with self._lock:
            worker = self._workers.pop((id(collection), index), None)
        if worker is None:
            return None
        worker.inbox.put(_STOP)
        worker.os_thread.join(timeout=10)
        return worker.thread_obj

    def _adopt_thread(self, collection: ThreadCollection, index: int,
                      thread_obj: Optional[DpsThread]) -> None:
        """Install a migrated thread object as instance *index*.

        ``None`` means the donor never activated the instance; the worker
        is then created lazily with fresh state on first delivery, as
        usual.
        """
        if thread_obj is None:
            return
        thread_obj.node_name = collection.node_of(index)
        with self._lock:
            key = (id(collection), index)
            if key in self._workers:
                raise ScheduleError(
                    f"instance {collection.name}[{index}] is already "
                    f"hosted here; cannot adopt migrated state")
            self._workers[key] = _ThreadWorker(self, collection, index,
                                               thread_obj=thread_obj)

    def _deliver(self, env: DataEnvelope) -> None:
        node = env.graph.node(env.node_id)
        worker = self._worker_for(node.collection, env.instance)
        if self.serialize_transfers and node.collection.node_of(env.instance) != \
                self._placement_of_current_thread():
            # Single-buffer wire round-trip: scatter-gather encode into
            # one owned buffer and let the receiving thread borrow
            # payloads from it (the buffer is owned solely by the
            # decoded token, so no defensive copy is needed).
            if self.tracer is None and self.metrics is None:
                wire = gather(encode_segments(env.token))
                env.token = decode(wire, copy=False)
            else:
                t0 = time.monotonic()
                wire = gather(encode_segments(env.token))
                env.token = decode(wire, copy=False)
                seconds = time.monotonic() - t0
                src = self._placement_of_current_thread()
                dest = node.collection.node_of(env.instance)
                if self.tracer is not None:
                    self.trace("serialize", node=src or "driver",
                               seconds=seconds, nbytes=len(wire))
                    self.trace("token_send", src=src or "driver", dest=dest,
                               nbytes=len(wire))
                if self.metrics is not None:
                    self.metrics.counter("wire_messages").inc()
                    self.metrics.counter("wire_bytes").inc(len(wire))
                    self.metrics.histogram("serialize_seconds").observe(seconds)
            env.wire_nbytes = None
        worker.inbox.put(env)

    def _placement_of_current_thread(self) -> Optional[str]:
        name = threading.current_thread().name
        if name.startswith("dps:"):
            with self._lock:
                for (cid, idx), worker in self._workers.items():
                    if worker.os_thread is threading.current_thread():
                        return worker.collection.node_of(idx)
        return None

    # ------------------------------------------------------------------
    # envelope handling (runs on worker threads)
    # ------------------------------------------------------------------
    def _handle_data(self, worker: _ThreadWorker, env: DataEnvelope) -> None:
        node = env.graph.node(env.node_id)
        if self.tracer is not None:
            self.trace("token_recv", node=node.collection.node_of(env.instance),
                       op=node.name, graph=env.graph.name,
                       depth=worker.inbox.qsize())
        if self.metrics is not None:
            self.metrics.gauge("queue_depth").set(worker.inbox.qsize())
        if node.kind in (OpKind.LEAF, OpKind.SPLIT):
            if node.kind is OpKind.SPLIT and env.frames \
                    and self._dedup is not None:
                # Replay dedup at the split's input: re-executing an
                # already-processed token here would mint a fresh inner
                # group and re-drive stateful merges downstream.  Leaf
                # inputs deliberately re-execute — they are stateless
                # and their outputs carry the same frame, so duplicates
                # die at the next non-leaf hop.
                frame = env.top_frame()
                with self._lock:
                    if not self._dedup.fresh(
                            (env.graph.name, env.node_id),
                            frame.group_id, frame.index):
                        return
            body = self._make_body(env, worker)
            self._drive(body, env.token)
            return
        frame = env.top_frame()
        with self._lock:
            if self._dedup is not None \
                    and not self._dedup.fresh(
                        (env.graph.name, env.node_id),
                        frame.group_id, frame.index):
                return  # replayed duplicate; the original was acked
            group = self._groups.get(frame.group_id)
            if group is None:
                group = _Group(frame.group_id)
                self._groups[frame.group_id] = group
            if group.instance is None:
                group.instance = env.instance
                group.node_id = env.node_id
                group.parent_frames = env.frames[:-1]
                group.worker = worker
            elif group.instance != env.instance or group.node_id != env.node_id:
                raise ScheduleError(
                    f"group {frame.group_id} routed to multiple merge instances"
                )
            group.received += 1
            start_body = group.body is None
            if start_body:
                group.consumed += 1
                self._ack(env)
        if start_body:
            body = self._make_body(env, worker, group=group)
            with self._lock:
                group.body = body
            self._drive(body, env.token)
        else:
            with self._lock:
                group.buffer.append(env)
                parked = group.parked
            if parked:
                self._poke_group(worker, frame.group_id)

    def _poke_group(self, worker: _ThreadWorker, group_id: int) -> None:
        while True:
            with self._lock:
                group = self._groups.get(group_id)
                if group is None or group.body is None or not group.parked:
                    return
                if group.buffer:
                    env = group.buffer.popleft()
                    group.consumed += 1
                    group.parked = False
                    self._ack(env)
                    value = env.token
                elif group.drained:
                    group.parked = False
                    group.completed = True
                    value = None
                else:
                    return
            self._drive(group.body, value, resume=True)
            return

    def _make_body(self, env: DataEnvelope, worker: _ThreadWorker,
                   group: Optional[_Group] = None) -> _Body:
        node = env.graph.node(env.node_id)
        op: Operation = node.op_class()
        if not isinstance(worker.thread_obj, node.op_class.thread_type):
            raise ScheduleError(
                f"{node.op_class.__name__} requires "
                f"{node.op_class.thread_type.__name__}"
            )
        base = env.frames if node.kind in (OpKind.LEAF, OpKind.SPLIT) \
            else env.frames[:-1]
        body = _Body(op, env.graph, env.node_id, worker, env.ctx_id, base,
                     group, env.ctx_origin)
        if self.tracer is not None:
            body.started_at = time.monotonic()
            self.trace("op_start",
                       node=node.collection.node_of(env.instance),
                       op=node.name, graph=env.graph.name)
        op.bind(worker.thread_obj, lambda req, b=body: self._emit(b, req),
                now=time.monotonic)
        return body

    # ------------------------------------------------------------------
    # body driver (blocking flavour)
    # ------------------------------------------------------------------
    def _drive(self, body: _Body, first_value: Any, resume: bool = False) -> None:
        op = body.op
        if not resume:
            if not inspect.isgeneratorfunction(op.execute):
                if body.kind in (OpKind.MERGE, OpKind.STREAM):
                    raise ScheduleError(
                        f"{type(op).__name__}.execute must be a generator"
                    )
                op.execute(first_value)
                self._finish_body(body)
                return
            gen = op.execute(first_value)
            to_send: Any = None
        else:
            gen = body.group.body_gen
            to_send = first_value

        while True:
            try:
                request = gen.send(to_send)
            except StopIteration:
                self._finish_body(body)
                return
            to_send = None
            if isinstance(request, PostRequest):
                admit = request._admit_event
                if admit is not None:
                    if self.tracer is None and self.metrics is None:
                        admit.wait()  # blocking split stall
                    else:
                        t0 = time.monotonic()
                        admit.wait()  # blocking split stall
                        waited = time.monotonic() - t0
                        node = body.graph.node(body.node_id)
                        if self.tracer is not None:
                            self.trace("admit",
                                       node=node.collection.node_of(
                                           body.worker.index),
                                       graph=body.graph.name, waited=waited)
                        if self.metrics is not None:
                            self.metrics.histogram(
                                "stall_seconds").observe(waited)
            elif isinstance(request, ChargeRequest):
                pass  # virtual cost: meaningless on the real-thread engine
            elif isinstance(request, SleepRequest):
                # Pacing delay (stream sources): real wall-clock wait.
                if request.seconds > 0:
                    time.sleep(request.seconds)
            elif isinstance(request, NextTokenRequest):
                group = body.group
                if group is None:
                    raise ScheduleError("next_token() outside merge/stream")
                with self._lock:
                    if group.buffer:
                        env = group.buffer.popleft()
                        group.consumed += 1
                        self._ack(env)
                        to_send = env.token
                        continue
                    if group.drained:
                        group.completed = True
                        to_send = None
                        continue
                    group.parked = True
                    group.body_gen = gen
                return
            elif isinstance(request, CallGraphRequest):
                to_send = self.run(request.graph_name, request.token)
            elif isinstance(request, ScatterCallRequest):
                if not body.opens_group:
                    raise ScheduleError(
                        "call_scatter() outside a split/stream body"
                    )
                to_send = self._run_scatter(request, body)
            else:
                raise ScheduleError(f"bad yield {request!r} from {type(op).__name__}")

    def _finish_body(self, body: _Body) -> None:
        if self.tracer is not None:
            node = body.graph.node(body.node_id)
            self.trace(
                "op_end",
                node=node.collection.node_of(body.worker.index),
                op=node.name,
                graph=body.graph.name,
                duration=time.monotonic() - body.started_at,
                posted=body.posted,
            )
        group = body.group
        if group is not None:
            with self._lock:
                if not group.completed:
                    raise ScheduleError(
                        f"{type(body.op).__name__} returned before consuming "
                        f"its whole group"
                    )
                del self._groups[group.group_id]
        if body.opens_group:
            if body.posted == 0:
                raise ScheduleError(
                    f"{type(body.op).__name__} posted no tokens"
                )
            if body.posted - body.shed == 0:
                raise ScheduleError(
                    f"{type(body.op).__name__}: the credit window shed "
                    f"every posted token ({body.shed}); the group would "
                    f"announce total 0 and hang its merge"
                )
            self._close_group(body)

    # ------------------------------------------------------------------
    # posting path
    # ------------------------------------------------------------------
    def _emit(self, body: _Body, req: PostRequest) -> None:
        token = req.token
        node = body.graph.node(body.node_id)
        if self.metrics is not None:
            self.metrics.counter("tokens_posted").inc()
        if not any(isinstance(token, t) for t in node.op_class.out_types):
            raise ScheduleError(
                f"{node.op_class.__name__} posted undeclared "
                f"{type(token).__name__}"
            )
        succ = body.graph.dispatch(body.node_id, type(token))
        if succ is None:
            body.posted += 1
            if body.graph.scatter:
                self._scatter_result(body, token)
                return
            self._final_result(body, token)
            return
        with self._lock:
            window = self._window_for(body) if body.opens_group else None
            if window is not None and body.out_group_id is None:
                self._group_counter += 1
                body.out_group_id = self._group_counter
            seq = body.posted
            body.posted += 1
            if window is not None:
                key = (body.graph.name, body.node_id, body.worker.index)
                if not window.can_send or self._pending.get(key):
                    shedding = getattr(window, "shedding", "block")
                    if shedding == "block":
                        # defer routing until the window admits the token
                        admit = threading.Event()
                        req._admit_event = admit
                        self._pending.setdefault(key, deque()).append(
                            (body, token, succ, seq, admit)
                        )
                        window.on_stall()
                        if self.tracer is not None:
                            self.trace("stall",
                                       node=node.collection.node_of(
                                           body.worker.index),
                                       graph=body.graph.name)
                        if self.metrics is not None:
                            self.metrics.counter("stalls").inc()
                        return
                    # Lossy modes never stall the poster: queued entries
                    # carry admit=None, queue capped at the window size.
                    pending = self._pending.setdefault(key, deque())
                    if len(pending) >= (window.window or 1):
                        if shedding == "drop-oldest":
                            for i, entry in enumerate(pending):
                                if entry[0] is body:
                                    del pending[i]
                                    self._record_shed(body, window)
                                    break
                            else:
                                # No queued entry of the live poster —
                                # dropping another body's token would
                                # corrupt its announced total; shed the
                                # incoming instead.
                                self._record_shed(body, window)
                                return
                        else:  # "shed": drop the incoming token
                            self._record_shed(body, window)
                            return
                    pending.append((body, token, succ, seq, None))
                    return
            env = self._route_env(body, token, succ, seq, window)
        self._deliver(env)

    def _record_shed(self, body: _Body, window: SplitWindow) -> None:
        """Count one shed post (caller holds the lock)."""
        if isinstance(window, CreditWindow):
            window.on_shed()
        body.shed += 1
        if self.tracer is not None:
            node = body.graph.node(body.node_id)
            self.trace("shed",
                       node=node.collection.node_of(body.worker.index),
                       graph=body.graph.name)
        if self.metrics is not None:
            self.metrics.counter("tokens_shed").inc()

    def _route_env(self, body: _Body, token: Token, succ: int, seq: int,
                   window) -> DataEnvelope:
        """Route and wrap a token (caller holds the lock)."""
        node = body.graph.node(body.node_id)
        succ_node = body.graph.node(succ)
        route = self._route_for(body.graph, succ, succ_node, window)
        instance = route(token)
        frames = body.base_frames
        if body.opens_group:
            frames = frames + (GroupFrame(
                group_id=body.out_group_id,
                index=seq,
                opener=body.node_id,
                opener_instance=body.worker.index,
                origin_node=node.collection.node_of(body.worker.index),
                routed_instance=instance,
            ),)
        if window is not None:
            window.on_post(instance)
        env = DataEnvelope(token, body.graph, succ, instance,
                           body.ctx_id, frames,
                           ctx_origin=body.ctx_origin)
        if window is not None and self._journal is not None:
            # Journal every windowed emission for split-boundary replay;
            # pruned when the merge's ack arrives, so the journal is
            # bounded by the flow-control window (tokens in flight).
            self._journal.record(env, time.monotonic())
        return env

    def _window_for(self, body: _Body) -> SplitWindow:
        key = (body.graph.name, body.node_id, body.worker.index)
        window = self._windows.get(key)
        if window is None:
            node = body.graph.node(body.node_id)
            streaming = is_streaming_opener(node)
            window = CreditWindow(
                self.stream.window_for(node.name, streaming,
                                       self.policy.window),
                shedding=self.stream.shedding_for(streaming),
            )
            self._windows[key] = window
        return window

    def _route_for(self, graph: Flowgraph, node_id: int, node, window) -> Route:
        key = (graph.name, node_id)
        route = self._routes.get(key)
        if route is None:
            route = self.routing.route_class_for(node.route_class)()
            holder = {"window": None}

            def outstanding(i: int) -> int:
                w = holder["window"]
                return w.outstanding(i) if w is not None else 0

            collection = node.collection

            def depth(i: int) -> int:
                # Caller holds the engine lock; locally hosted instances
                # expose their exact inbox depth, never-activated ones
                # count as empty.
                worker = self._workers.get((id(collection), i))
                return worker.inbox.qsize() if worker is not None else 0

            route.bind(RoutingContext(collection, outstanding, depth))
            route._dps_holder = holder  # type: ignore[attr-defined]
            self._routes[key] = route
        route._dps_holder["window"] = window  # type: ignore[attr-defined]
        return route

    # ------------------------------------------------------------------
    # results (hooks the multiprocess kernel overrides for remote ctxs)
    # ------------------------------------------------------------------
    def _final_result(self, body: _Body, token: Token) -> None:
        """Deliver a depth-0 result token to its activation's caller."""
        with self._lock:
            result_q = self._results.get(body.ctx_id)
        if result_q is None:
            raise ScheduleError(f"result for unknown activation {body.ctx_id}")
        result_q.put(token)

    def _scatter_result(self, body: _Body, token: Token) -> None:
        """Deliver a scatter-graph output token to the calling split."""
        self._scatter_token(body.ctx_id, token)

    def _announce_scatter_total(self, body: _Body) -> None:
        """Tell the scatter caller how many tokens its group contains."""
        self.scatter_total(body.ctx_id, body.posted - body.shed)

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------
    def _ack(self, env: DataEnvelope) -> None:
        """Consume-side ack (caller holds the lock)."""
        frame = env.top_frame()
        if self.tracer is not None:
            node = env.graph.node(env.node_id)
            self.trace("ack", node=node.collection.node_of(env.instance),
                       graph=env.graph.name, opener=frame.opener,
                       group=frame.group_id)
        if self.metrics is not None:
            self.metrics.counter("acks").inc()
        self._send_ack(env.graph.name, frame.opener, frame.opener_instance,
                       frame.origin_node, frame.routed_instance,
                       frame.group_id, frame.index)

    def _send_ack(self, graph_name: str, opener: int, opener_instance: int,
                  origin_node: str, routed_instance: int,
                  group_id: int = 0, index: int = 0) -> None:
        """Hook: route the ack to the opener's window (local here)."""
        self._apply_ack(graph_name, opener, opener_instance, routed_instance,
                        group_id, index)

    def _apply_ack(self, graph_name: str, opener: int, opener_instance: int,
                   routed_instance: int, group_id: int = 0,
                   index: int = 0) -> None:
        """Feed an ack into the opener's window; release stalled posts.

        Caller must hold the lock.
        """
        if self._journal is not None and group_id:
            self._journal.prune(group_id, index)
        key = (graph_name, opener, opener_instance)
        window = self._windows.get(key)
        if window is None:
            return  # opener used no window (policy None at post time)
        window.on_ack(routed_instance)
        pending = self._pending.get(key)
        to_deliver = []
        while pending and window.can_send:
            qbody, qtoken, qsucc, qseq, admit = pending.popleft()
            queued_env = self._route_env(qbody, qtoken, qsucc, qseq, window)
            to_deliver.append((queued_env, admit))
        if pending is not None and not pending:
            self._pending.pop(key, None)
        for queued_env, admit in to_deliver:
            self._deliver(queued_env)
            if admit is not None:
                admit.set()

    def _close_group(self, body: _Body) -> None:
        graph = body.graph
        if graph.scatter and body.node_id == graph.scatter_opener:
            self._announce_scatter_total(body)
            return
        merge_id = graph.matching_merge(body.node_id)
        self._announce_group_total(body, merge_id)

    def _announce_group_total(self, body: _Body, merge_id: int) -> None:
        """Hook: tell the merge's kernel(s) the group's token count."""
        self._apply_group_total(body.out_group_id, body.posted - body.shed)

    def _apply_group_total(self, group_id: int, total: int) -> None:
        """Record a group's total; resume its merge body if parked."""
        with self._lock:
            group = self._groups.get(group_id)
            if group is None:
                group = _Group(group_id)
                self._groups[group_id] = group
            group.total = total
            worker = group.worker
            parked = group.parked
        if worker is not None and parked:
            worker.inbox.put(("resume", group_id))
        elif worker is None:
            # no token has arrived yet; the total will be found when the
            # first token creates the body
            pass
