"""The shared engine contract, runtime envelopes and applications.

:class:`Engine` is the base every execution engine derives from — the
simulated cluster, the OS-thread engine and the multiprocess kernel
cluster all share one public surface: graph/application registration
(``register_graph``/``register_app``/``graph``), the
``run``/``shutdown``/context-manager lifecycle, and uniform
``policy=``/``tracer=``/``metrics=`` construction so observability
attaches the same way everywhere.

Tokens travelling between threads are wrapped in :class:`DataEnvelope`
carrying the "control structures giving information about their state and
position within the flow graph" that the paper describes: the target graph
node and instance, the activation id, and the stack of group frames pushed
by enclosing split/stream operations.

Small control messages implement the feedback machinery:

- :class:`AckMessage` — the matching merge acknowledges a consumed token
  to the split instance's controller (drives flow control and
  load-balanced routing);
- :class:`GroupTotalMessage` — a split/stream instance announces, when its
  body completes, how many tokens the group contains, so the merge knows
  when ``next_token()`` must return ``None``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from ..core.flowcontrol import FlowControlPolicy, StreamPolicy
from ..core.graph import Flowgraph
from ..serial.token import Token

__all__ = [
    "Engine",
    "GroupFrame",
    "DataEnvelope",
    "AckMessage",
    "GroupTotalMessage",
    "Application",
    "RunResult",
    "DATA_HEADER_BYTES",
    "ACK_BYTES",
    "GROUP_TOTAL_BYTES",
    "coerce_run_result",
]

#: Wire overhead of the DPS control structures on each data token.
DATA_HEADER_BYTES = 128
#: Wire size of a token acknowledgement.
ACK_BYTES = 32
#: Wire size of a group-total announcement.
GROUP_TOTAL_BYTES = 48


@dataclass(frozen=True)
class GroupFrame:
    """One level of split-merge nesting attached to a token."""

    group_id: int
    #: Emission index within the group (0-based).
    index: int
    #: Graph node id of the split/stream that opened the group.
    opener: int
    #: Thread index of the opening split/stream instance.
    opener_instance: int
    #: Node (machine) hosting the opening instance — ack destination.
    origin_node: str
    #: Thread index the token was routed to when it left the opener;
    #: echoed back in acks to drive load-balanced routing.
    routed_instance: int


@dataclass(slots=True)
class DataEnvelope:
    """A token in flight towards (graph, node_id, instance)."""

    token: Token
    graph: Flowgraph
    node_id: int
    instance: int
    ctx_id: int
    frames: Tuple[GroupFrame, ...] = ()
    #: Memoized wire size of ``token`` (payload only, without the data
    #: header), filled in by the engine the first time the envelope is
    #: priced at the NIC so later hops don't re-measure it.  Must be
    #: reset to ``None`` whenever ``token`` is replaced.
    wire_nbytes: Optional[int] = None
    #: Kernel that owns the activation's result queue.  ``None`` means the
    #: activation is local to the engine handling the envelope (the only
    #: case on the single-process engines); the multiprocess runtime sets
    #: it so depth-0 result tokens find their way back across the wire.
    ctx_origin: Optional[str] = None

    def top_frame(self) -> GroupFrame:
        if not self.frames:
            raise RuntimeError(
                f"token at {self.graph.node(self.node_id).name} has no "
                f"group frame; merge outside a split-merge construct"
            )
        return self.frames[-1]


@dataclass(frozen=True)
class AckMessage:
    """Merge → split feedback: one token of *group_id* was consumed."""

    graph_name: str
    opener: int
    opener_instance: int
    group_id: int
    routed_instance: int


@dataclass(frozen=True)
class GroupTotalMessage:
    """Split → merge instances: the group contains *total* tokens."""

    graph_name: str
    merge_node: int
    instance: int
    group_id: int
    total: int


class Application:
    """A named DPS application: a bundle of flow graphs.

    Applications expose graphs by name; another application can call an
    exposed graph as if it were a leaf operation (paper §4–5).  The
    runtime launches application instances lazily on the nodes that
    receive tokens, charging the node's launch delay once.
    """

    def __init__(self, name: str):
        if not name:
            raise ValueError("application name must be non-empty")
        self.name = name
        self.graphs: dict[str, Flowgraph] = {}

    def expose(self, graph: Flowgraph, name: Optional[str] = None) -> Flowgraph:
        """Register *graph* under *name* (default ``graph.name``)."""
        key = name or graph.name
        if key in self.graphs and self.graphs[key] is not graph:
            raise ValueError(f"application {self.name!r} already exposes {key!r}")
        self.graphs[key] = graph
        return graph

    def __repr__(self) -> str:
        return f"<Application {self.name!r} graphs={sorted(self.graphs)}>"


@dataclass
class RunResult:
    """Outcome of one graph activation."""

    token: Token
    #: Virtual time when the activation started / its result reached the
    #: driver node.
    started_at: float
    finished_at: float
    #: ``True`` when the engine lost an execution node at some point and
    #: replayed journaled tokens to finish (sticky across runs on the
    #: multiprocess engine — once a kernel died, every later result was
    #: produced by the degraded cluster).
    recovered: bool = False
    #: Journaled tokens re-delivered so far to mask failures (cumulative
    #: per engine; ``0`` on a fault-free run).
    replayed_tokens: int = 0
    #: Voluntary membership changes (``add_kernel``/``retire_kernel``
    #: rebalances) the engine has performed so far — cumulative per
    #: engine, like :attr:`replayed_tokens`.
    rebalances: int = 0
    #: Thread instances migrated between nodes by those rebalances
    #: (cumulative per engine).
    tokens_moved: int = 0

    @property
    def makespan(self) -> float:
        return self.finished_at - self.started_at


class Engine:
    """Base class of the three execution engines.

    Defines the engine-agnostic surface once:

    - **registration**: :meth:`register_graph`, :meth:`register_app` and
      :meth:`graph` lookup (subclasses validate placements via the
      :meth:`_validate_graph` hook);
    - **lifecycle**: :meth:`shutdown` (idempotent no-op by default) and
      ``with engine: ...`` context management;
    - **observability**: every engine accepts ``tracer=`` (a
      :class:`~repro.trace.Tracer` recording the unified event
      vocabulary of :mod:`repro.trace.events`) and ``metrics=`` (a
      :class:`~repro.trace.MetricsRegistry`) and a ``policy=`` flow
      control policy.  Both observers default to ``None`` and every
      emit site is guarded, so instrumentation is near-free when
      disabled.
    """

    def __init__(
        self,
        policy: Optional[FlowControlPolicy] = None,
        tracer: Optional[Any] = None,
        metrics: Optional[Any] = None,
        stream: Optional[StreamPolicy] = None,
    ):
        self.policy = policy if policy is not None else FlowControlPolicy()
        #: Streaming credit configuration (per-edge credit windows and
        #: the shedding mode); the default instance inherits ``policy``
        #: everywhere and blocks, i.e. batch behaviour is unchanged.
        self.stream = stream if stream is not None else StreamPolicy()
        self.tracer = tracer
        self.metrics = metrics
        self._graphs: Dict[str, Flowgraph] = {}
        self._graph_app: Dict[str, str] = {}
        #: Process label stamped on trace events (kernel name on the
        #: multiprocess runtime); ``None`` on single-process engines.
        self._trace_pid: Optional[str] = None
        #: :class:`RunResult` of the most recent ``run()`` on this engine,
        #: with wall-clock (or virtual) timestamps and the recovery
        #: fields filled in.  Engines that return a bare token from
        #: ``run()`` still publish the full result here.
        self.last_result: Optional["RunResult"] = None

    # ------------------------------------------------------------------
    # registration (defined once; historical per-engine spellings such as
    # ThreadedEngine's "accepted for SimEngine parity" app_name shim are
    # deprecated in favour of this shared implementation)
    # ------------------------------------------------------------------
    def register_app(self, app: "Application") -> None:
        """Register every graph of *app*; they can then be run or called."""
        for name, graph in app.graphs.items():
            self._register(graph, app.name, name)

    def register_graph(self, graph: Flowgraph, app_name: str = "app") -> None:
        """Register a standalone graph under a default application."""
        self._register(graph, app_name, graph.name)

    def _register(self, graph: Flowgraph, app_name: str, name: str) -> None:
        existing = self._graphs.get(name)
        if existing is not None and existing is not graph:
            raise ValueError(f"graph name {name!r} already registered")
        self._validate_graph(graph)
        self._graphs[name] = graph
        self._graph_app[graph.name] = app_name

    def _validate_graph(self, graph: Flowgraph) -> None:
        """Hook: engines check thread placements against their cluster."""

    def graph(self, name: str) -> Flowgraph:
        try:
            return self._graphs[name]
        except KeyError:
            raise KeyError(
                f"unknown graph {name!r}; registered: {sorted(self._graphs)}"
            ) from None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def run(self, graph, token: Token, **kwargs):
        raise NotImplementedError

    def fail_node(self, node_name: str) -> int:
        """Fail the execution node *node_name* mid-run.

        Returns the number of thread instances (SimEngine) or kernel
        processes (MultiprocessEngine) lost.  Engines that have no
        notion of an independently failing node raise
        :class:`NotImplementedError`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support fail_node(); it is "
            "supported on SimEngine (discards the node's thread state) "
            "and MultiprocessEngine (kills the node's kernel process)"
        )

    # ------------------------------------------------------------------
    # elastic membership (implemented by SimEngine instantly and by
    # MultiprocessEngine behind the member/replay cluster barriers)
    # ------------------------------------------------------------------
    def add_kernel(self, node_name: Optional[str] = None) -> str:
        """Grow the cluster by one execution node mid-run.

        The engine registers the new node, rebalances thread instances
        onto it (migrating live thread state), and resumes with results
        bit-identical to a static run.  Returns the new node's name.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support add_kernel(); it is "
            "supported on SimEngine (extends the simulated cluster) and "
            "MultiprocessEngine (forks a kernel process that joins via "
            "the name server)"
        )

    def retire_kernel(self, node_name: str) -> int:
        """Drain *node_name* and remap its thread instances off it.

        Graceful: the node hands its thread state to the survivors
        before leaving, so no journal replay storm.  Returns the number
        of thread instances moved.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support retire_kernel(); it "
            "is supported on SimEngine (migrates instances off the node) "
            "and MultiprocessEngine (drains and stops the node's kernel "
            "process)"
        )

    def members(self) -> Tuple[str, ...]:
        """Names of the live execution nodes, sorted."""
        raise NotImplementedError(
            f"{type(self).__name__} does not track cluster membership; "
            "members() is supported on SimEngine and MultiprocessEngine"
        )

    def shutdown(self) -> None:
        """Release engine resources (idempotent; no-op by default)."""

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _now(self) -> float:
        """Engine clock for trace timestamps (virtual on SimEngine)."""
        return time.monotonic()

    def trace(self, kind: str, **fields: Any) -> None:
        """Emit one trace event if a tracer is attached.

        Hot paths guard with ``if self.tracer is not None`` before
        calling so the disabled case costs one attribute load.
        """
        tracer = self.tracer
        if tracer is not None:
            if self._trace_pid is not None:
                fields.setdefault("pid", self._trace_pid)
            tracer.emit(self._now(), kind, **fields)


def coerce_run_result(outcome, started_at: float, finished_at: float) -> RunResult:
    """Normalize an engine ``run()`` outcome into a :class:`RunResult`.

    :class:`~repro.runtime.sim_engine.SimEngine` returns a
    :class:`RunResult` with virtual timestamps; the real-execution engines
    return the bare result token.  Application wrappers that must work on
    any engine wrap the outcome with their own wall-clock timestamps.
    """
    if isinstance(outcome, RunResult):
        return outcome
    return RunResult(outcome, started_at, finished_at)
