"""The DPS runtime environment: kernels and the name server (paper §4).

A *kernel* runs on every machine participating in parallel program
execution; it launches applications lazily and brokers communication.
Kernels are *"named independently of the underlying host names.  This
allows multiple kernels to be executed on a single host.  This feature is
mainly useful for debugging purposes.  It enforces the use of the
networking code ... although the application is running within a single
computer."*  Kernels *"locate each other either by using UDP broadcasts
or by accessing a simple name server."*

This module models that layer on top of the simulated cluster:

- :class:`KernelSpec` / :func:`cluster_from_kernels` — build a cluster
  where each kernel is a scheduling endpoint, several of which may share
  a physical host (transfers between co-hosted kernels use the network
  model's loopback parameters — full networking code, no physical wire);
- :class:`NameServer` — kernel-name registration and lookup, with
  simulated lookup latency;
- :class:`KernelEnvironment` — convenience wrapper tying a name server,
  a cluster of kernels and a :class:`~repro.runtime.SimEngine` together,
  including the single-machine debugging deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..cluster.cluster import ClusterSpec
from ..cluster.network import NetworkSpec
from ..cluster.node import NodeSpec
from ..core.flowcontrol import FlowControlPolicy
from .sim_engine import SimEngine

__all__ = [
    "KernelSpec",
    "NameServer",
    "KernelEnvironment",
    "cluster_from_kernels",
]


@dataclass(frozen=True)
class KernelSpec:
    """One DPS kernel: a named scheduling endpoint on a physical host."""

    name: str
    host: str = ""
    cpus: int = 2
    flops: float = 80e6
    launch_delay: float = 0.125

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("kernel name must be non-empty")


def cluster_from_kernels(
    kernels: Sequence[KernelSpec],
    network: Optional[NetworkSpec] = None,
) -> ClusterSpec:
    """Build a cluster spec with one node per kernel.

    Kernels sharing a host share it for communication purposes (loopback
    instead of the physical wire) while keeping their own CPUs — the
    model of several kernel processes on a multi-core machine.
    """
    if not kernels:
        raise ValueError("need at least one kernel")
    nodes = tuple(
        NodeSpec(
            name=k.name,
            cpus=k.cpus,
            flops=k.flops,
            launch_delay=k.launch_delay,
            host=k.host or k.name,
        )
        for k in kernels
    )
    return ClusterSpec(nodes=nodes, network=network or NetworkSpec())


class NameServer:
    """The simple name server kernels may register with (paper §4).

    Keeps kernel name → host mappings; lookups have a small latency that
    driver processes can charge with
    ``yield sim.timeout(ns.lookup_latency)``.
    """

    #: round-trip cost of one name lookup over the network
    lookup_latency: float = 0.5e-3

    def __init__(self) -> None:
        self._kernels: Dict[str, KernelSpec] = {}

    def register(self, kernel: KernelSpec) -> None:
        existing = self._kernels.get(kernel.name)
        if existing is not None and existing != kernel:
            raise ValueError(
                f"kernel name {kernel.name!r} already registered on host "
                f"{existing.host!r}"
            )
        self._kernels[kernel.name] = kernel

    def unregister(self, name: str) -> None:
        """Remove a kernel (nodes can be removed from the cluster at any
        point in time, paper §4)."""
        self._kernels.pop(name, None)

    def lookup(self, name: str) -> KernelSpec:
        try:
            return self._kernels[name]
        except KeyError:
            raise KeyError(
                f"no kernel named {name!r}; registered: {sorted(self._kernels)}"
            ) from None

    def kernels(self) -> List[str]:
        return sorted(self._kernels)

    def kernels_on(self, host: str) -> List[str]:
        return sorted(
            name for name, k in self._kernels.items() if k.host == host
        )

    def __len__(self) -> int:
        return len(self._kernels)


class KernelEnvironment:
    """A deployed DPS runtime: kernels + name server + engine.

    ``KernelEnvironment.debug(n)`` builds the paper's debugging setup —
    *n* kernels on a single machine, forcing every inter-kernel transfer
    through the full serialization and networking code while staying on
    one host.
    """

    def __init__(
        self,
        kernels: Sequence[KernelSpec],
        network: Optional[NetworkSpec] = None,
        policy: FlowControlPolicy = FlowControlPolicy(),
        **engine_kwargs,
    ):
        self.name_server = NameServer()
        for kernel in kernels:
            self.name_server.register(kernel)
        self.kernel_specs = list(kernels)
        self.cluster_spec = cluster_from_kernels(kernels, network)
        self.engine = SimEngine(self.cluster_spec, policy=policy,
                                **engine_kwargs)

    @classmethod
    def debug(cls, n_kernels: int, host: str = "localhost",
              **kwargs) -> "KernelEnvironment":
        """*n* kernels on one machine — the paper's debugging deployment."""
        if n_kernels < 1:
            raise ValueError("need at least one kernel")
        kernels = [
            KernelSpec(name=f"kernel{i + 1:02d}", host=host)
            for i in range(n_kernels)
        ]
        return cls(kernels, **kwargs)

    @property
    def kernel_names(self) -> List[str]:
        return [k.name for k in self.kernel_specs]

    def mapping_for(self, *entries: str) -> str:
        """Validate kernel names and build a mapping string.

        ``env.mapping_for("kernel01*2", "kernel02")`` checks each kernel
        against the name server and returns the string for
        :meth:`~repro.core.ThreadCollection.map`.
        """
        for entry in entries:
            name = entry.split("*")[0]
            self.name_server.lookup(name)  # raises for unknown kernels
        return " ".join(entries)
