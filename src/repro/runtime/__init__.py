"""Execution engines and runtime environment for DPS schedules."""

from typing import Union

from .base import (
    ACK_BYTES,
    DATA_HEADER_BYTES,
    GROUP_TOTAL_BYTES,
    AckMessage,
    Application,
    DataEnvelope,
    Engine,
    GroupFrame,
    GroupTotalMessage,
    RunResult,
    coerce_run_result,
)
from .checkpoint import Checkpoint, CheckpointManager, fail_node
from .controller import ScheduleError, SimController
from .kernel import KernelEnvironment, KernelSpec, NameServer
from .multiprocess_engine import MultiprocessEngine
from .sim_engine import SimEngine
from .threaded_engine import ThreadedEngine

__all__ = [
    "ACK_BYTES",
    "AckMessage",
    "Application",
    "Checkpoint",
    "CheckpointManager",
    "Engine",
    "KernelEnvironment",
    "KernelSpec",
    "NameServer",
    "fail_node",
    "DATA_HEADER_BYTES",
    "DataEnvelope",
    "ENGINE_KINDS",
    "GROUP_TOTAL_BYTES",
    "GroupFrame",
    "GroupTotalMessage",
    "MultiprocessEngine",
    "RunResult",
    "ScheduleError",
    "SimController",
    "SimEngine",
    "ThreadedEngine",
    "coerce_run_result",
    "create_engine",
]

#: Engine kinds :func:`create_engine` understands.
ENGINE_KINDS = ("sim", "threaded", "multiprocess")


def create_engine(kind: str, **opts) -> Union[SimEngine, ThreadedEngine,
                                              MultiprocessEngine]:
    """Build an execution engine by name with uniform options.

    *kind* is ``"sim"``, ``"threaded"`` or ``"multiprocess"``.  All
    engines accept ``policy=``, ``tracer=`` and ``metrics=``; remaining
    keyword options are engine-specific (e.g. ``serialize_payloads=``
    on sim, ``startup_timeout=`` on multiprocess).

    The simulated engine needs a cluster; pass ``cluster=`` explicitly,
    or ``nodes=N`` to build the paper's homogeneous cluster, defaulting
    to 4 nodes (``node01`` .. ``node04``)::

        engine = create_engine("sim", nodes=8, tracer=Tracer())
        with create_engine("threaded") as engine:
            ...
    """
    if kind == "sim":
        from ..cluster import paper_cluster
        cluster = opts.pop("cluster", None)
        nodes = opts.pop("nodes", 4)
        if cluster is None:
            cluster = paper_cluster(nodes)
        return SimEngine(cluster, **opts)
    if kind == "threaded":
        opts.pop("nodes", None)  # placement labels need no declaration
        return ThreadedEngine(**opts)
    if kind == "multiprocess":
        opts.pop("nodes", None)  # kernels come from the graph mappings
        return MultiprocessEngine(**opts)
    raise ValueError(
        f"unknown engine kind {kind!r}; expected one of {ENGINE_KINDS}"
    )
