"""Execution engines and runtime environment for DPS schedules."""

from .base import (
    ACK_BYTES,
    DATA_HEADER_BYTES,
    GROUP_TOTAL_BYTES,
    AckMessage,
    Application,
    DataEnvelope,
    GroupFrame,
    GroupTotalMessage,
    RunResult,
    coerce_run_result,
)
from .checkpoint import Checkpoint, CheckpointManager, fail_node
from .controller import ScheduleError, SimController
from .kernel import KernelEnvironment, KernelSpec, NameServer
from .multiprocess_engine import MultiprocessEngine
from .sim_engine import SimEngine
from .threaded_engine import ThreadedEngine

__all__ = [
    "ACK_BYTES",
    "AckMessage",
    "Application",
    "Checkpoint",
    "CheckpointManager",
    "KernelEnvironment",
    "KernelSpec",
    "NameServer",
    "fail_node",
    "DATA_HEADER_BYTES",
    "DataEnvelope",
    "GROUP_TOTAL_BYTES",
    "GroupFrame",
    "GroupTotalMessage",
    "MultiprocessEngine",
    "RunResult",
    "ScheduleError",
    "SimController",
    "SimEngine",
    "ThreadedEngine",
    "coerce_run_result",
]
