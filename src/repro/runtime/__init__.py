"""Execution engines and runtime environment for DPS schedules."""

from typing import Union

from ..core.routing import RoutingPolicy
from ..net.recovery import FaultPolicy
from .base import (
    ACK_BYTES,
    DATA_HEADER_BYTES,
    GROUP_TOTAL_BYTES,
    AckMessage,
    Application,
    DataEnvelope,
    Engine,
    GroupFrame,
    GroupTotalMessage,
    RunResult,
    coerce_run_result,
)
from .checkpoint import Checkpoint, CheckpointManager, fail_node
from .controller import KernelFailure, ScheduleError, SimController
from .kernel import KernelEnvironment, KernelSpec, NameServer
from .multiprocess_engine import MultiprocessEngine
from .scaling import ScalingPolicy
from .sim_engine import SimEngine
from .threaded_engine import ThreadedEngine

__all__ = [
    "ACK_BYTES",
    "AckMessage",
    "Application",
    "Checkpoint",
    "CheckpointManager",
    "Engine",
    "FaultPolicy",
    "KernelEnvironment",
    "KernelFailure",
    "KernelSpec",
    "NameServer",
    "fail_node",
    "DATA_HEADER_BYTES",
    "DataEnvelope",
    "ENGINE_KINDS",
    "GROUP_TOTAL_BYTES",
    "GroupFrame",
    "GroupTotalMessage",
    "MultiprocessEngine",
    "RoutingPolicy",
    "RunResult",
    "ScalingPolicy",
    "ScheduleError",
    "SimController",
    "SimEngine",
    "ThreadedEngine",
    "coerce_run_result",
    "create_engine",
]

#: Engine kinds :func:`create_engine` understands.
ENGINE_KINDS = ("sim", "threaded", "multiprocess")

#: Options every engine kind accepts.  ``transport`` and ``faults`` are
#: accepted uniformly so harnesses can pass one option dict to any kind;
#: engines that cannot honour a *non-None* value reject it with an
#: explanation rather than silently ignoring it.  ``nodes`` sizes the
#: simulated cluster and is accepted (and ignored) elsewhere because
#: real-execution placements need no declaration.
_COMMON_OPTS = frozenset({
    "policy", "tracer", "metrics", "transport", "faults", "nodes",
    "routing", "stream",
})

#: Engine-specific options on top of :data:`_COMMON_OPTS`.
_ENGINE_OPTS = {
    "sim": frozenset({"cluster", "serialize_payloads",
                      "charge_serialization"}),
    "threaded": frozenset({"serialize_transfers"}),
    "multiprocess": frozenset({"dial_deadline", "startup_timeout",
                               "recover", "heartbeat_interval",
                               "heartbeat_miss_limit", "ns_port",
                               "scaling"}),
}

#: Only the multiprocess engine has a wire (transport tuning) and real
#: processes to kill (fault injection).
_MP_ONLY = frozenset({"transport", "faults"})


def _check_opts(kind: str, opts: dict) -> None:
    allowed = _COMMON_OPTS | _ENGINE_OPTS[kind]
    unknown = sorted(set(opts) - allowed)
    if unknown:
        hints = []
        for name in unknown:
            owners = sorted(k for k, extra in _ENGINE_OPTS.items()
                            if name in extra)
            if owners:
                hints.append(f"{name!r} is a {'/'.join(owners)} option")
            else:
                hints.append(f"{name!r} is not an engine option")
        raise ValueError(
            f"unknown option(s) for create_engine({kind!r}): "
            f"{', '.join(hints)}; {kind!r} accepts {sorted(allowed)}")
    if kind != "multiprocess":
        for name in _MP_ONLY:
            if opts.get(name) is not None:
                raise ValueError(
                    f"{name}= is only honoured by the multiprocess engine "
                    f"(the {kind!r} engine has no "
                    f"{'wire' if name == 'transport' else 'kernel processes'}"
                    f"); pass {name}=None or use "
                    f"create_engine('multiprocess')")


def create_engine(kind: str, **opts) -> Union[SimEngine, ThreadedEngine,
                                              MultiprocessEngine]:
    """Build an execution engine by name with uniform options.

    *kind* is ``"sim"``, ``"threaded"`` or ``"multiprocess"``.  Every
    kind accepts ``policy=``, ``tracer=``, ``metrics=``, ``routing=``
    (a :class:`~repro.core.routing.RoutingPolicy` selecting round-robin
    or queue-depth adaptive split routing), ``stream=`` (a
    :class:`~repro.core.flowcontrol.StreamPolicy` setting per-edge
    credit windows and the shedding mode for streaming stages),
    ``transport=`` and
    ``faults=`` (the last two must be ``None`` outside the multiprocess
    engine, which is the only one with a wire to tune and kernel
    processes to kill); ``scaling=`` attaches an autoscaling
    :class:`~repro.runtime.scaling.ScalingPolicy` to the multiprocess
    engine.  Remaining options are engine-specific — see the engine
    matrix in ``DESIGN.md``.  Unknown options raise ``ValueError``
    naming the engine kinds that do accept them.

    The simulated engine needs a cluster; pass ``cluster=`` explicitly,
    or ``nodes=N`` to build the paper's homogeneous cluster, defaulting
    to 4 nodes (``node01`` .. ``node04``)::

        engine = create_engine("sim", nodes=8, tracer=Tracer())
        with create_engine("threaded") as engine:
            ...
    """
    if kind not in ENGINE_KINDS:
        raise ValueError(
            f"unknown engine kind {kind!r}; expected one of {ENGINE_KINDS}")
    _check_opts(kind, opts)
    if kind == "sim":
        from ..cluster import paper_cluster
        opts.pop("transport", None)
        opts.pop("faults", None)
        cluster = opts.pop("cluster", None)
        nodes = opts.pop("nodes", 4)
        if cluster is None:
            cluster = paper_cluster(nodes)
        return SimEngine(cluster, **opts)
    if kind == "threaded":
        opts.pop("transport", None)
        opts.pop("faults", None)
        opts.pop("nodes", None)  # placement labels need no declaration
        return ThreadedEngine(**opts)
    opts.pop("nodes", None)  # kernels come from the graph mappings
    return MultiprocessEngine(**opts)
