"""The simulated-cluster execution engine.

:class:`SimEngine` runs DPS applications on a modelled cluster
(:mod:`repro.cluster`) under virtual time.  Operations *really* execute —
tokens carry real payloads, routing/flow-control/merging is the real
mechanism — but computation is charged to node CPUs via cost models and
communication passes through the NIC/switch model, so overlap and
pipelining effects appear in the virtual clock exactly as they would on
the paper's testbed wall clock.

Typical use::

    engine = SimEngine(paper_cluster(4))
    workers = ThreadCollection(ComputeThread, "proc").map("node01*1 node02")
    ... build graph ...
    engine.register_graph(graph)
    result = engine.run(graph, input_token)
    print(result.makespan, engine.stats())

Concurrent activity (pipelined client loops, services) uses
:meth:`spawn` driver processes that ``yield engine.start(...)`` events.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Generator, Optional, Union

import dataclasses

from ..cluster.cluster import Cluster, ClusterSpec
from ..cluster.costs import dps_wire_overhead_seconds
from ..core.flowcontrol import FlowControlPolicy, StreamPolicy
from ..core.graph import Flowgraph
from ..core.routing import RoutingPolicy
from ..net.recovery import _unique_collections, plan_rebalance
from ..serial.token import Token
from ..serial.wire import decode, encode_segments, gather, measure
from ..simkernel import Event, Process, Simulator
from .base import (
    ACK_BYTES,
    DATA_HEADER_BYTES,
    AckMessage,
    DataEnvelope,
    Engine,
    RunResult,
)
from .controller import ScheduleError, SimController

__all__ = ["SimEngine", "ScheduleError"]


@dataclass
class _Activation:
    ctx_id: int
    driver_node: str
    event: Event
    wrap_result: bool
    started_at: float
    done: bool = False
    # scatter-call machinery (inter-application split, paper §6)
    scatter: bool = False
    on_token: Optional[Any] = None
    received: int = 0
    delivered: int = 0
    total: Optional[int] = None
    graph_name: str = ""


def _local_post(engine: "SimEngine", env: DataEnvelope, src_node, dest_node,
                dest: str):
    yield engine.cluster.network.transfer(src_node, dest_node, 0)
    engine.controllers[dest].receive(env)


def _remote_send(engine: "SimEngine", env: DataEnvelope, payload, src: str,
                 dest: str, src_node, dest_node, nbytes: int, extra: float,
                 connect: float):
    yield engine.cluster.network.transfer(
        src_node, dest_node, nbytes,
        tx_extra=extra + connect, rx_extra=extra,
    )
    if payload is not None:
        # The replacement token is a round-trip through this very buffer,
        # so the memoized wire size stays exact.
        env.token = decode(payload, copy=False)
    if engine.tracer is not None:
        engine.trace("token_send", src=src, dest=dest, nbytes=nbytes)
    engine.controllers[dest].receive(env)


def _ctl_send(engine: "SimEngine", src_node, dest_node, nbytes: int,
              dest: str, message: Any):
    yield engine.cluster.network.transfer(src_node, dest_node, nbytes)
    engine.controllers[dest].receive(message)


class SimEngine(Engine):
    """Discrete-event execution engine over a modelled cluster."""

    def __init__(
        self,
        cluster: Union[Cluster, ClusterSpec],
        policy: Optional[FlowControlPolicy] = None,
        serialize_payloads: bool = True,
        charge_serialization: bool = True,
        tracer: Optional[Any] = None,
        metrics: Optional[Any] = None,
        routing: Optional[RoutingPolicy] = None,
        stream: Optional[StreamPolicy] = None,
    ):
        super().__init__(policy=policy, tracer=tracer, metrics=metrics,
                         stream=stream)
        #: Routing policy consulted when controllers build split routes;
        #: ``queue_depth`` substitutes adaptive routing for declared
        #: round-robin routes.  ``routing=None`` defers to REPRO_ROUTING.
        self.routing = routing if routing is not None \
            else RoutingPolicy.from_env()
        self.sim = Simulator()
        self.cluster = (
            cluster if isinstance(cluster, Cluster) else Cluster(self.sim, cluster)
        )
        #: Encode/decode token payloads on remote transfers (authoritative
        #: wire sizes, enforces serializability).  Disable for very large
        #: payload sweeps; sizes then come from Token.payload_nbytes().
        self.serialize_payloads = serialize_payloads
        #: Charge token (de)serialization to node CPUs.
        self.charge_serialization = charge_serialization
        self.controllers: Dict[str, SimController] = {
            name: SimController(self, name) for name in self.cluster.node_names
        }
        #: (app, src, dst) pairs with an established TCP connection
        self._connected: set = set()
        self._group_counter = itertools.count(1)
        self._ctx_counter = itertools.count(1)
        self._activations: Dict[int, _Activation] = {}
        #: Nodes eligible to host thread instances.  Starts as the whole
        #: cluster; ``add_kernel``/``retire_kernel`` edit it.  Retired
        #: machines stay in the cluster model (they may be re-admitted)
        #: but rebalancing never places threads on them.
        self._members: set = set(self.cluster.node_names)
        self._rebalances = 0
        self._tokens_moved = 0

    # ------------------------------------------------------------------
    # registration (shared Engine base; cluster placement validation)
    # ------------------------------------------------------------------
    def _validate_graph(self, graph: Flowgraph) -> None:
        for collection in graph.collections():
            for node_name in collection.placements:
                if node_name not in self.controllers:
                    raise ScheduleError(
                        f"collection {collection.name!r} maps thread(s) to "
                        f"{node_name!r}, which is not in the cluster "
                        f"{sorted(self.controllers)}"
                    )

    def app_of(self, env: DataEnvelope) -> str:
        return self._graph_app.get(env.graph.name, "app")

    def prelaunch(self) -> None:
        """Mark every application as already running on every node.

        Skips the lazy-launch delay — use for steady-state benchmarks.
        """
        apps = set(self._graph_app.values())
        names = list(self.controllers)
        for controller in self.controllers.values():
            controller._launched.update(apps)
        for app in apps:
            for src in names:
                for dst in names:
                    self._connected.add((app, src, dst))

    # ------------------------------------------------------------------
    # identifiers
    # ------------------------------------------------------------------
    def next_group_id(self) -> int:
        return next(self._group_counter)

    def _now(self) -> float:
        return self.sim.now

    # ------------------------------------------------------------------
    # activations
    # ------------------------------------------------------------------
    def start(
        self,
        graph: Union[Flowgraph, str],
        token: Token,
        driver_node: Optional[str] = None,
    ) -> Event:
        """Begin one activation; the event succeeds with a RunResult."""
        return self._start(graph, token, driver_node, wrap_result=True)

    def start_call(
        self, graph_name: str, token: Token, caller_node: str
    ) -> Event:
        """Graph call from an operation body; succeeds with the result token."""
        return self._start(graph_name, token, caller_node, wrap_result=False)

    def start_scatter(
        self, graph_name: str, token: Token, caller_node: str, on_token
    ) -> Event:
        """Inter-application scatter call (paper §6 future work).

        Runs the named scatter graph; each of its depth-1 output tokens
        is transferred to *caller_node* and handed to *on_token* (the
        calling split posts it as its own).  The returned event succeeds
        with the token count once the remote group is fully delivered.
        """
        graph = self.graph(graph_name)
        if not graph.scatter:
            raise ScheduleError(
                f"graph {graph_name!r} is not a scatter graph; use "
                f"call_graph() for ordinary services"
            )
        event = self._start(graph, token, caller_node, wrap_result=False,
                            scatter=True, on_token=on_token)
        return event

    def _start(
        self,
        graph: Union[Flowgraph, str],
        token: Token,
        driver_node: Optional[str],
        wrap_result: bool,
        scatter: bool = False,
        on_token=None,
    ) -> Event:
        if isinstance(graph, str):
            graph = self.graph(graph)
        elif graph.name not in self._graphs:
            self.register_graph(graph)
        if graph.scatter and not scatter:
            raise ScheduleError(
                f"scatter graph {graph.name!r} must be invoked through "
                f"call_scatter() from a split/stream operation"
            )
        if not isinstance(token, Token):
            raise TypeError(f"graph input must be a Token, got {type(token).__name__}")
        entry_node = graph.node(graph.entry)
        if not entry_node.op_class.accepts(type(token)):
            raise ScheduleError(
                f"graph {graph.name!r} entry accepts "
                f"{[t.__name__ for t in entry_node.op_class.in_types]}, "
                f"got {type(token).__name__}"
            )
        driver = driver_node or entry_node.collection.node_of(0)
        if driver not in self.controllers:
            raise ScheduleError(f"driver node {driver!r} not in cluster")
        ctx_id = next(self._ctx_counter)
        event = self.sim.event()
        self._activations[ctx_id] = _Activation(
            ctx_id, driver, event, wrap_result, self.sim.now,
            scatter=scatter, on_token=on_token, graph_name=graph.name,
        )
        controller = self.controllers[driver]
        route = controller._route_for(graph, graph.entry, entry_node, None)
        instance = route(token)
        env = DataEnvelope(
            token=token,
            graph=graph,
            node_id=graph.entry,
            instance=instance,
            ctx_id=ctx_id,
            frames=(),
        )
        self.trace("activation_start", graph=graph.name, driver=driver)
        self.transmit(env, driver, entry_node.collection.node_of(instance))
        return event

    def complete_activation(self, ctx_id: int, token: Token,
                            from_node: str, frame=None,
                            needs_ack: bool = False) -> None:
        """Called by a controller when the exit node posts a result.

        Ordinary graphs produce exactly one result; scatter graphs call
        this once per depth-1 output token (*frame* identifies the remote
        group; *needs_ack* says the token was admitted through an
        upstream flow-control window that expects consumption feedback).
        """
        act = self._activations.get(ctx_id)
        if act is None or act.done:
            raise ScheduleError(f"result for unknown/finished activation {ctx_id}")

        if act.scatter:
            act.received += 1

            def deliver_one(sim=self.sim):
                if from_node != act.driver_node:
                    nbytes = self._wire_size(token) + DATA_HEADER_BYTES
                    yield self.cluster.network.transfer(
                        self.cluster.node(from_node),
                        self.cluster.node(act.driver_node),
                        nbytes,
                    )
                if needs_ack and frame is not None:
                    ack = AckMessage(
                        graph_name=act.graph_name,
                        opener=frame.opener,
                        opener_instance=frame.opener_instance,
                        group_id=frame.group_id,
                        routed_instance=frame.routed_instance,
                    )
                    self.send_control(act.driver_node, frame.origin_node,
                                      ACK_BYTES, ack)
                act.on_token(token)
                act.delivered += 1
                self._maybe_finish_scatter(act)

            self.sim.spawn(deliver_one(), name=f"scatter:{ctx_id}")
            return

        act.done = True

        def deliver(sim=self.sim):
            if from_node != act.driver_node:
                nbytes = self._wire_size(token) + DATA_HEADER_BYTES
                yield self.cluster.network.transfer(
                    self.cluster.node(from_node),
                    self.cluster.node(act.driver_node),
                    nbytes,
                )
            self.trace("activation_done", ctx=ctx_id)
            if act.wrap_result:
                act.event.succeed(RunResult(token, act.started_at, sim.now))
            else:
                act.event.succeed(token)

        self.sim.spawn(deliver(), name=f"result:{ctx_id}")

    def scatter_total(self, ctx_id: int, total: int) -> None:
        """The remote scatter opener announced its group size."""
        act = self._activations.get(ctx_id)
        if act is None or not act.scatter:
            raise ScheduleError(f"scatter total for unknown activation {ctx_id}")
        act.total = total
        self._maybe_finish_scatter(act)

    def _maybe_finish_scatter(self, act: _Activation) -> None:
        if act.done or act.total is None or act.delivered < act.total:
            return
        act.done = True
        self.trace("activation_done", ctx=act.ctx_id, scatter=True)
        act.event.succeed(act.total)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _wire_size(self, token: Token) -> int:
        if self.serialize_payloads:
            # Size-only visitor: O(fields) arithmetic, never serializes
            # the payload (a multi-MB Buffer costs the same to price as
            # a scalar token).
            return measure(token)
        return token.payload_nbytes()

    def transmit(self, env: DataEnvelope, src: str, dest: str) -> None:
        """Move a data envelope between controllers (or locally)."""
        src_node = self.cluster.node(src)
        dest_node = self.cluster.node(dest)
        if src == dest:
            # Zero-copy pointer pass (paper §4): negligible local cost.
            Process(self.sim, _local_post(self, env, src_node, dest_node, dest),
                    "post")
            return

        if self.serialize_payloads:
            # Single-copy wire path: scatter-gather serialize into one
            # owned buffer (large ndarray payloads are borrowed views
            # until the gather) and let the receiver borrow payloads
            # straight out of it — no defensive copies anywhere.
            payload = gather(encode_segments(env.token))
            if env.wire_nbytes is None:
                env.wire_nbytes = len(payload)
        else:
            payload = None
            if env.wire_nbytes is None:
                env.wire_nbytes = env.token.payload_nbytes()
        nbytes = env.wire_nbytes + DATA_HEADER_BYTES
        # The DPS communication layer builds/parses control structures and
        # runs the (near-zero-copy) serializer inline on each side.
        extra = dps_wire_overhead_seconds(nbytes) if self.charge_serialization else 0.0
        if self.tracer is not None:
            self.trace("serialize", node=src, seconds=extra, nbytes=nbytes)
        if self.metrics is not None:
            self.metrics.counter("wire_messages").inc()
            self.metrics.counter("wire_bytes").inc(nbytes)
            self.metrics.histogram("serialize_seconds").observe(extra)
        # delayed connection establishment (paper §4): the first data
        # object between two application instances opens the TCP socket
        conn_key = (self.app_of(env), src, dest)
        connect = 0.0
        if conn_key not in self._connected:
            self._connected.add(conn_key)
            connect = self.cluster.network.spec.connect_overhead
        Process(self.sim,
                _remote_send(self, env, payload, src, dest, src_node,
                             dest_node, nbytes, extra, connect),
                "send")

    def send_control(self, src: str, dest: str, nbytes: int, message: Any) -> None:
        """Move a small control message (ack / group total)."""
        src_node = self.cluster.node(src)
        dest_node = self.cluster.node(dest)
        Process(self.sim,
                _ctl_send(self, src_node, dest_node, nbytes, dest, message),
                "ctl")

    # ------------------------------------------------------------------
    # driving
    # ------------------------------------------------------------------
    def spawn(self, gen: Generator, name: str = "driver"):
        """Run a driver process alongside the schedule (client loops)."""
        return self.sim.spawn(gen, name=name)

    def run(
        self,
        graph: Union[Flowgraph, str],
        token: Token,
        driver_node: Optional[str] = None,
        until: Optional[float] = None,
    ) -> RunResult:
        """Run one activation to completion and return its result."""
        event = self.start(graph, token, driver_node)
        self.sim.run(until=until)
        if not event.triggered:
            self._raise_stuck()
        self.check_quiescent()
        result = event.value
        # Membership counters are engine-cumulative (same contract as
        # the multiprocess engine's recovery snapshot).
        result.rebalances = self._rebalances
        result.tokens_moved = self._tokens_moved
        self.last_result = result
        return result

    def run_until(self, event: Event, limit: Optional[float] = None) -> Any:
        """Advance the simulation until *event* triggers.

        Unlike :meth:`run`, this leaves other activity (client driver
        loops, concurrent activations) pending — it is the primitive for
        workloads with perpetual background processes.  Raises if the
        event queue drains or *limit* virtual seconds pass first.
        """
        while not event.triggered:
            if limit is not None and self.sim.now > limit:
                raise ScheduleError(
                    f"run_until() exceeded the virtual time limit {limit}"
                )
            if not self.sim.step():
                self._raise_stuck()
        if not event.ok:
            raise event.value
        return event.value

    def run_to_completion(self, until: Optional[float] = None) -> float:
        """Drain all pending activity; returns the final virtual time."""
        t = self.sim.run(until=until)
        self.check_quiescent()
        return t

    def _raise_stuck(self) -> None:
        details = []
        group_nodes: Dict[int, list] = {}
        for controller in self.controllers.values():
            details.extend(controller.open_groups())
            for gid, group in controller._groups.items():
                if group.received > 0:
                    group_nodes.setdefault(gid, []).append(controller.node_name)
            pending = controller.pending_posts()
            if pending:
                details.append(
                    f"{pending} posts stuck behind flow control at "
                    f"{controller.node_name}"
                )
        for gid, nodes in group_nodes.items():
            if len(nodes) > 1:
                details.append(
                    f"group {gid} was routed to multiple merge instances on "
                    f"{nodes}; all tokens of one group must reach the same "
                    f"merge thread"
                )
        raise ScheduleError(
            "schedule did not complete; likely a routing bug (tokens of one "
            "group sent to different merge instances) or a flow-control "
            "deadlock. Diagnostics: " + ("; ".join(details) or "none")
        )

    def check_quiescent(self) -> None:
        """Verify no merge group or flow-control queue is left dangling."""
        problems = []
        for controller in self.controllers.values():
            problems.extend(controller.open_groups())
            if controller.pending_posts():
                problems.append(
                    f"pending posts at {controller.node_name}"
                )
        for act in self._activations.values():
            if not act.done:
                problems.append(f"activation {act.ctx_id} never completed")
        if problems:
            raise ScheduleError("non-quiescent schedule: " + "; ".join(problems))

    def fail_node(self, node_name: str) -> int:
        """Simulate a node crash: every DPS thread on it is lost.

        The machine itself stays in the cluster model (it may be
        rebooted / replaced); what disappears is the application state.
        Returns the number of threads lost.  The schedule must be
        quiescent — mid-flight failure in the simulated engine is beyond
        the paper's lightweight checkpointing approach (use
        MultiprocessEngine with ``recover=True`` for that).
        """
        self.check_quiescent()
        controller = self.controllers[node_name]
        lost = 0
        for key in list(controller._threads):
            ts = controller._threads.pop(key)
            if ts.proc is not None and ts.proc.is_alive:
                ts.proc.interrupt("node failure")
            lost += 1
        controller._launched.clear()
        self.trace("node_failed", node=node_name, lost_threads=lost)
        return lost

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def members(self) -> tuple:
        """Nodes currently eligible to host thread instances (sorted)."""
        return tuple(sorted(self._members))

    def add_kernel(self, node_name: Optional[str] = None) -> str:
        """Grow the cluster by one node and rebalance onto it.

        A brand-new machine is modelled on the first node's spec (same
        CPU count and flop rate); a previously retired node is simply
        re-admitted.  The schedule must be quiescent; thread instances
        migrate (with state, priced by ``state_nbytes``) through the
        same :meth:`remap` machinery failure recovery uses.
        """
        if node_name is None:
            i = 1
            while f"node{i:02d}" in self.cluster.nodes:
                i += 1
            node_name = f"node{i:02d}"
        if node_name in self._members:
            raise ScheduleError(f"node {node_name!r} is already a member")
        if node_name not in self.cluster.nodes:
            template = self.cluster.spec.nodes[0]
            self.cluster.add_node(dataclasses.replace(template,
                                                      name=node_name))
            self.controllers[node_name] = SimController(self, node_name)
        self._members.add(node_name)
        self._rebalance(joined=(node_name,))
        return node_name

    def retire_kernel(self, node_name: str) -> int:
        """Drain *node_name* and remove it from membership.

        Thread instances (and the distributed data they hold) migrate
        off onto the remaining members; the machine stays in the cluster
        model so it can be re-admitted later.  Returns the number of
        thread placements moved.
        """
        if node_name not in self._members:
            raise ScheduleError(
                f"node {node_name!r} is not a member; members: "
                f"{sorted(self._members)}")
        if len(self._members) == 1:
            raise ScheduleError("cannot retire the last member node")
        self._members.discard(node_name)
        try:
            return self._rebalance(retired=(node_name,))
        except BaseException:
            self._members.add(node_name)  # roll back membership
            raise

    def _rebalance(self, joined=(), retired=()) -> int:
        """Voluntary rebalance: spread placements over the members."""
        self.check_quiescent()
        graphs = list(self._graphs.values())
        mapping, moved = plan_rebalance(graphs, sorted(self._members),
                                        joined=joined)
        colls = {c.name: c for c in _unique_collections(graphs)}
        for name, placements in mapping.items():
            self.remap(colls[name], list(placements))
        self._rebalances += 1
        self._tokens_moved += moved
        self.trace("rebalance", joined=list(joined), retired=list(retired),
                   moved=moved, members=sorted(self._members))
        if self.metrics is not None:
            self.metrics.counter("rebalances").inc()
            if moved:
                self.metrics.counter("tokens_moved").inc(moved)
        return moved

    # ------------------------------------------------------------------
    # dynamic reshaping
    # ------------------------------------------------------------------
    def remap(self, collection, mapping: str | list) -> Dict[str, Any]:
        """Remap a thread collection onto different nodes at runtime.

        The paper's dynamicity story (§2, §6): *"Dynamically created
        thread collections and mappings of threads to nodes also offer
        the potential for dynamically allocating computing and I/O
        resources according to the requirements of multiple concurrently
        running parallel applications."*

        The schedule must be quiescent (between activations).  Thread
        objects — and thus the distributed data they hold — migrate to
        their new nodes over the network, priced by
        :meth:`~repro.core.DpsThread.state_nbytes`.  The thread count
        must stay the same (redistribution across a different number of
        threads is application logic, not a runtime concern).

        Returns a report dict: migrated thread count, bytes moved and
        virtual migration time.
        """
        self.check_quiescent()
        old_placements = collection.placements
        if isinstance(mapping, str):
            collection.map(mapping)
        else:
            collection.map_nodes(mapping)
        new_placements = collection.placements
        if len(new_placements) != len(old_placements):
            collection.map_nodes(old_placements)  # roll back
            raise ScheduleError(
                f"remap cannot change the thread count "
                f"({len(old_placements)} -> {len(new_placements)}); "
                f"redistribute data at the application level instead"
            )
        self._validate_mapping_nodes(new_placements, collection)
        moves = [
            (i, old, new)
            for i, (old, new) in enumerate(zip(old_placements, new_placements))
            if old != new
        ]
        report = {"migrated": 0, "bytes": 0, "started_at": self.sim.now,
                  "duration": 0.0}

        def migrate():
            for index, old, new in moves:
                thread = self.controllers[old].evict_thread(collection, index)
                if thread is None:
                    # never instantiated: nothing to move, it will be
                    # created lazily on the new node
                    continue
                nbytes = thread.state_nbytes() + DATA_HEADER_BYTES
                yield self.cluster.network.transfer(
                    self.cluster.node(old), self.cluster.node(new), nbytes
                )
                self.controllers[new].adopt_thread(collection, index, thread)
                report["migrated"] += 1
                report["bytes"] += nbytes
                self.trace("thread_migrated", collection=collection.name,
                           index=index, src=old, dest=new, nbytes=nbytes)
            report["duration"] = self.sim.now - report["started_at"]

        proc = self.sim.spawn(migrate(), name=f"remap:{collection.name}")
        self.run_until(proc)
        return report

    def _validate_mapping_nodes(self, placements, collection) -> None:
        for node_name in placements:
            if node_name not in self.controllers:
                raise ScheduleError(
                    f"collection {collection.name!r} remapped to unknown "
                    f"node {node_name!r}"
                )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Aggregate run statistics (network, CPU, flow control).

        Formerly ``metrics()`` — renamed so ``metrics=`` can hold an
        attached :class:`~repro.trace.MetricsRegistry` uniformly across
        engines.
        """
        net = self.cluster.network
        per_node = {
            name: {
                "compute_time": node.compute_time,
                "cpu_utilization": node.cpu_utilization(),
            }
            for name, node in self.cluster.nodes.items()
        }
        stalls = 0
        posted = 0
        for controller in self.controllers.values():
            for window in controller.window_stats().values():
                stalls += window.stalls
                posted += window.total_posted
        return {
            "time": self.sim.now,
            "network_bytes": net.bytes_sent,
            "network_messages": net.messages_sent,
            "local_messages": net.local_messages,
            "nodes": per_node,
            "window_stalls": stalls,
            "tokens_posted": posted,
        }
