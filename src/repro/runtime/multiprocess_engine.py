"""Multiprocess execution engine: real parallel DPS kernels over TCP.

:class:`MultiprocessEngine` is the third engine flavour (after the
simulated and threaded ones) and the closest to the C++ runtime the
paper describes: it forks **one OS process per logical node** named in
the thread-collection mappings, each running a
:class:`~repro.net.kernel.DistributedKernel` — the full ThreadedEngine
controller/operation dispatch loop — plus a TCP name-server process for
discovery.  Kernels find each other through the name server and dial
lazily on the first token they ship; tokens travel in the zero-copy wire
format over framed scatter-gather sockets.

The driver process hosts a *console kernel* (``"__driver__"``) that owns
no thread instances; it only initiates activations and collects their
results, so ``engine.run(graph, token)`` behaves exactly like the other
engines and the example applications run unmodified.

Because each kernel is a separate interpreter, CPython's GIL no longer
serializes compute: CPU-bound operations genuinely run in parallel
(see ``benchmarks/test_mp_throughput.py``).

Child processes are created with the ``fork`` start method so that
graphs, operation classes and thread classes defined anywhere (including
test function scopes) are inherited without pickling; the engine
therefore requires a platform with ``fork`` (Linux, macOS under the fork
method) and must fork the kernels *before* the console kernel starts its
service threads.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import threading
import time
import weakref
from typing import Any, Dict, List, Optional, Tuple, Union

from ..core.flowcontrol import FlowControlPolicy, StreamPolicy
from ..core.graph import Flowgraph
from ..core.routing import RoutingPolicy
from ..net.connections import TransportPolicy
from ..net.kernel import CONSOLE_KERNEL, DistributedKernel, run_kernel_process
from ..net.nameserver import run_name_server
from ..net.recovery import FaultPolicy
from ..serial import fastpath
from ..serial.token import Token
from .base import Engine, RunResult
from .controller import ScheduleError
from .scaling import ScalingPolicy

#: Any of these present in the environment switches autoscaling on when
#: no explicit ``scaling=`` policy was given.
_SCALING_ENV_VARS = ("REPRO_SCALING_MIN", "REPRO_SCALING_MAX",
                     "REPRO_SCALING_HIGH", "REPRO_SCALING_LOW",
                     "REPRO_SCALING_COOLDOWN")

__all__ = ["MultiprocessEngine"]


def _reap_processes(procs: List[multiprocessing.process.BaseProcess]) -> None:
    """Terminate any forked child still alive in *procs*.

    Module-level (no reference back to the engine) so it can serve as a
    :func:`weakref.finalize` callback: it fires when the engine is
    garbage-collected without :meth:`MultiprocessEngine.shutdown` — e.g.
    a KeyboardInterrupt or an exception mid-startup — and again at
    interpreter exit, so an aborted run cannot orphan the name-server
    process and leak its port.
    """
    for proc in procs:
        try:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
        except Exception:
            pass  # best-effort: reaping must never raise during teardown


class MultiprocessEngine(Engine):
    """Run DPS schedules on one OS process per logical node."""

    def __init__(self, policy: Optional[FlowControlPolicy] = None,
                 dial_deadline: float = 15.0,
                 startup_timeout: float = 30.0,
                 tracer: Optional[Any] = None,
                 metrics: Optional[Any] = None,
                 transport: Optional[TransportPolicy] = None,
                 recover: Optional[bool] = None,
                 faults: Optional[FaultPolicy] = None,
                 heartbeat_interval: float = 0.25,
                 heartbeat_miss_limit: int = 4,
                 ns_port: int = 0,
                 routing: Optional[RoutingPolicy] = None,
                 scaling: Optional[ScalingPolicy] = None,
                 stream: Optional[StreamPolicy] = None):
        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise ScheduleError(
                "MultiprocessEngine requires the 'fork' start method; "
                "use ThreadedEngine on this platform"
            ) from exc
        super().__init__(policy=policy, tracer=tracer, metrics=metrics,
                         stream=stream)
        #: Wire-path tuning (outbox coalescing, ack aggregation, the
        #: shared-memory lane).  Defaults honour the REPRO_SHM /
        #: REPRO_TRANSPORT_BATCH environment opt-outs; every forked
        #: kernel inherits the same resolved policy.
        self.transport = transport if transport is not None \
            else TransportPolicy.from_env()
        #: Failure recovery (split-boundary replay) is opt-in: the
        #: default preserves fail-fast semantics — a dead kernel fails
        #: the caller with KernelFailure instead of being masked.
        #: ``recover=None`` defers to ``REPRO_RECOVER=1``.
        self.recover = (os.environ.get("REPRO_RECOVER") == "1"
                        if recover is None else bool(recover))
        #: Deterministic chaos injection, shipped to every forked kernel;
        #: ``faults=None`` defers to the ``REPRO_FAULT_*`` variables.
        self.faults = faults if faults is not None else FaultPolicy.from_env()
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_miss_limit = heartbeat_miss_limit
        self.dial_deadline = dial_deadline
        self.startup_timeout = startup_timeout
        #: Engine-wide routing policy (``round_robin``/``queue_depth``),
        #: shipped to every forked kernel; ``routing=None`` defers to
        #: ``REPRO_ROUTING``.
        self.routing = routing if routing is not None \
            else RoutingPolicy.from_env()
        #: Autoscaling policy driving spawn/retire decisions from the
        #: heartbeat-reported queue depths.  ``scaling=None`` defers to
        #: the ``REPRO_SCALING_*`` variables; with none of them set,
        #: autoscaling stays off and membership changes only happen
        #: through explicit :meth:`add_kernel`/:meth:`retire_kernel`.
        if scaling is None and any(v in os.environ
                                   for v in _SCALING_ENV_VARS):
            scaling = ScalingPolicy.from_env()
        self.scaling = scaling
        # elastic membership bookkeeping, guarded by _proc_lock (the
        # autoscaler thread and user calls race on these)
        self._proc_lock = threading.Lock()
        self._next_ordinal = 1
        self._retired: set = set()
        #: Kernels the autoscaler added — the only ones it may retire
        #: (seed kernels and user-added ones are never scaled away).
        self._elastic_kernels: List[str] = []
        #: CLI joiners: kernels that registered with our name server
        #: from outside this process (no local Process handle).
        self._external_kernels: set = set()
        #: Requested name-server port; 0 picks an ephemeral one.  The
        #: resolved ``(host, port)`` lands in :attr:`ns_address` once the
        #: cluster is up, so external clients can be pointed at it.
        self.ns_port = ns_port
        self.ns_address: Optional[Tuple[str, int]] = None
        self._console: Optional[DistributedKernel] = None
        self._kernel_procs: Dict[str, multiprocessing.process.BaseProcess] = {}
        self._ns_proc: Optional[multiprocessing.process.BaseProcess] = None
        self._closing = threading.Event()
        self._closed = False
        # Every forked child is appended here; the finalizer reaps
        # whatever shutdown() did not get to (GC after an exception,
        # interpreter exit after SIGINT) so no orphan keeps the port.
        self._orphans: List[multiprocessing.process.BaseProcess] = []
        self._reaper = weakref.finalize(self, _reap_processes, self._orphans)

    # ------------------------------------------------------------------
    # registration (shared Engine base + fork-time freeze)
    # ------------------------------------------------------------------
    def _register(self, graph: Flowgraph, app_name: str, name: str) -> None:
        if self._console is not None:
            raise ScheduleError(
                "cannot register graphs after the kernel processes have "
                "been forked; register everything before the first run()"
            )
        super()._register(graph, app_name, name)

    @property
    def kernel_names(self) -> List[str]:
        """Logical node names the registered graphs are mapped onto."""
        names = set()
        for graph in self._graphs.values():
            for collection in graph.collections():
                names.update(collection.placements)
        return sorted(names)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _ensure_started(self) -> DistributedKernel:
        if self._closed:
            raise ScheduleError("engine has been shut down")
        if self._console is not None:
            return self._console
        if not self._graphs:
            raise ScheduleError("no graphs registered")
        kernels = self.kernel_names
        if not kernels:
            raise ScheduleError("registered graphs map no thread collections")

        import socket as _socket
        ns_sock = _socket.socket(_socket.AF_INET, _socket.SOCK_STREAM)
        ns_sock.setsockopt(_socket.SOL_SOCKET, _socket.SO_REUSEADDR, 1)
        ns_sock.bind(("127.0.0.1", self.ns_port))
        ns_sock.listen(64)
        ns_address = ns_sock.getsockname()[:2]
        self.ns_address = (ns_address[0], ns_address[1])
        # Bind in the parent, serve in the child: the port is known before
        # any kernel starts, so there is no registration race to retry.
        self._ns_proc = self._mp.Process(
            target=run_name_server, args=(ns_sock,),
            name="dps-nameserver", daemon=True)
        self._ns_proc.start()
        self._orphans.append(self._ns_proc)
        ns_sock.close()

        # From here on any failure — a kernel that never comes up, a
        # KeyboardInterrupt while waiting, a console that cannot dial —
        # must tear down what was already forked, or the name-server
        # process outlives the run and leaks its port.
        try:
            graphs = list(self._graphs.values())
            peers = [CONSOLE_KERNEL, *kernels]
            ready_events = []
            # Fork the kernels BEFORE the console kernel spins up its
            # service threads — forking a multi-threaded parent is where
            # the dragons live.  Ordinal 0 is the console; workers start
            # at 1.
            trace_children = (self.tracer is not None
                              or self.metrics is not None)
            for ordinal, name in enumerate(kernels, start=1):
                ready = self._mp.Event()
                proc = self._mp.Process(
                    target=run_kernel_process,
                    args=(name, ordinal, ns_address, peers, graphs,
                          self.policy, ready, trace_children, self.transport,
                          self.recover, self.faults, self.heartbeat_interval,
                          self.routing, self.stream),
                    name=f"dps-kernel:{name}", daemon=True)
                proc.start()
                self._kernel_procs[name] = proc
                self._orphans.append(proc)
                ready_events.append((name, ready))
            self._next_ordinal = len(kernels) + 1
            for name, ready in ready_events:
                if not ready.wait(timeout=self.startup_timeout):
                    raise ScheduleError(
                        f"kernel process {name!r} failed to start within "
                        f"{self.startup_timeout}s")

            console = self._make_console(ns_address, peers)
            for graph in graphs:
                console.register_graph(graph)
            console.start()
            self._console = console
        except BaseException:
            self.shutdown()
            raise

        threading.Thread(target=self._monitor_children,
                         name="dps-kernel-monitor", daemon=True).start()
        if self.heartbeat_interval > 0:
            threading.Thread(target=self._liveness_loop,
                             name="dps-liveness", daemon=True).start()
        if self.scaling is not None:
            threading.Thread(target=self._autoscale_loop,
                             name="dps-autoscaler", daemon=True).start()
        return console

    def _make_console(self, ns_address, peers) -> DistributedKernel:
        """Build the driver-side console kernel (ServiceEngine overrides
        this to substitute its session-aware subclass).

        The console records straight into the engine-level tracer and
        metrics registry; worker-kernel buffers merge into the same
        objects at collect_traces() time.
        """
        return DistributedKernel(
            CONSOLE_KERNEL, 0, ns_address, peers,
            policy=self.policy, dial_deadline=self.dial_deadline,
            tracer=self.tracer, metrics=self.metrics,
            transport=self.transport, recover=self.recover,
            routing=self.routing, stream=self.stream)

    def _monitor_children(self) -> None:
        # The sentinel map is rebuilt every iteration rather than
        # snapshotted once: add_kernel() grows the process table mid-run
        # and retire_kernel() shrinks it, and both must be reflected
        # without restarting the monitor.
        reported: set = set()
        while not self._closing.is_set():
            with self._proc_lock:
                sentinels = {proc.sentinel: name
                             for name, proc in self._kernel_procs.items()
                             if name not in reported
                             and name not in self._retired}
            if not sentinels:
                if self._closing.wait(0.5):
                    return
                continue
            ready = multiprocessing.connection.wait(
                list(sentinels), timeout=0.5)
            if self._closing.is_set():
                return
            for sentinel in ready:
                name = sentinels[sentinel]
                with self._proc_lock:
                    proc = self._kernel_procs.get(name)
                    retired = name in self._retired
                if proc is None or retired:
                    continue  # retired between snapshot and wakeup
                proc.join(timeout=1)
                reported.add(name)
                console = self._console
                if console is not None:
                    console.handle_kernel_down(
                        name, f"exitcode {proc.exitcode}", propagate=False)

    def _liveness_loop(self) -> None:
        """Poll the name server's heartbeat leases.

        Process-exit sentinels catch dead kernels; this catches *hung*
        ones — a wedged process keeps its TCP registration alive but
        stops beating, which connection-drop detection cannot see.
        """
        max_age = self.heartbeat_interval * self.heartbeat_miss_limit
        while not self._closing.wait(self.heartbeat_interval):
            console = self._console
            if console is None:
                return
            try:
                expired = console._ns.expired(max_age)
            except Exception:
                return  # name server is gone: teardown in progress
            self._admit_external(console)
            for entry in expired:
                name = entry["name"]
                # The console registers but never beats (it cannot miss
                # its own heartbeats — it is the observer).
                with self._proc_lock:
                    known = (name in self._kernel_procs
                             or name in self._external_kernels)
                    retired = name in self._retired
                if name == CONSOLE_KERNEL or not known or retired:
                    continue
                with console._recovery_lock:
                    already_dead = name in console._dead_kernels
                if already_dead:
                    continue
                if self.metrics is not None:
                    self.metrics.counter("heartbeats_missed").inc(
                        max(1, int(entry["age"] / self.heartbeat_interval)))
                console.handle_kernel_down(
                    name, f"heartbeat lease expired "
                          f"({entry['age']:.2f}s since last beat)",
                    propagate=False)

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def _poll_depths(self) -> Optional[Dict[str, int]]:
        """Heartbeat-reported queue depths per kernel, or ``None`` when
        the name server cannot be reached (rebalance then falls back to
        load-oblivious spreading)."""
        console = self._console
        if console is None:
            return None
        try:
            depths = console._ns.loads()
        except Exception:
            return None
        depths.pop(CONSOLE_KERNEL, None)
        return depths

    def _admit_external(self, console: DistributedKernel) -> None:
        """Admit CLI joiners: any kernel registered with our name server
        that this engine did not fork (``repro.cli join --ns ...``).

        Admission runs the same voluntary rebalance as
        :meth:`add_kernel`; it is skipped while a rebalance or failure
        recovery is already in flight and retried on the next liveness
        tick — a kernel registering mid-barrier simply waits one lease
        period for membership.
        """
        try:
            registered = set(console._ns.loads())
        except Exception:
            return
        with self._proc_lock:
            strangers = sorted(
                registered - set(self._kernel_procs)
                - self._external_kernels - self._retired - {CONSOLE_KERNEL})
        if not strangers:
            return
        with console._recovery_lock:
            recovering = bool(console._dead_kernels)
        if console._rebalancing or recovering:
            return  # barrier in flight: admit on a later tick
        for name in strangers:
            try:
                console.rebalance(joined=[name], depths=self._poll_depths())
            except Exception:
                continue  # joiner died before admission; retry or forget
            with self._proc_lock:
                self._external_kernels.add(name)

    def members(self) -> Tuple[str, ...]:
        """Live kernel names (sorted), excluding the console."""
        if self._console is None:
            return tuple(self.kernel_names)
        with self._proc_lock:
            live = (set(self._kernel_procs) | self._external_kernels) \
                - self._retired
        return tuple(sorted(live))

    def add_kernel(self, node_name: Optional[str] = None) -> str:
        """Fork a new kernel process and rebalance thread instances onto
        it mid-run.

        The joiner registers with the name server, the console quiesces
        in-flight activations, ships the migrating thread instances (and
        their state) over, and replays journaled split boundaries — the
        next :meth:`run` produces bit-identical results on the grown
        cluster.  Returns the new kernel's name.
        """
        console = self._ensure_started()
        with self._proc_lock:
            if node_name is None:
                i = 1
                used = set(self._kernel_procs) | self._external_kernels \
                    | self._retired | set(self.kernel_names)
                while f"node{i:02d}" in used:
                    i += 1
                node_name = f"node{i:02d}"
            elif (node_name in self._kernel_procs
                    or node_name in self._external_kernels):
                raise ValueError(f"kernel {node_name!r} is already a member")
            ordinal = self._next_ordinal
            self._next_ordinal += 1
        graphs = list(self._graphs.values())
        peers = [CONSOLE_KERNEL, *self.members(), node_name]
        trace_children = (self.tracer is not None or self.metrics is not None)
        ready = self._mp.Event()
        proc = self._mp.Process(
            target=run_kernel_process,
            args=(node_name, ordinal, self.ns_address, peers, graphs,
                  self.policy, ready, trace_children, self.transport,
                  self.recover, self.faults, self.heartbeat_interval,
                  self.routing, self.stream),
            name=f"dps-kernel:{node_name}", daemon=True)
        proc.start()
        with self._proc_lock:
            self._kernel_procs[node_name] = proc
            self._orphans.append(proc)
        if not ready.wait(timeout=self.startup_timeout):
            proc.terminate()
            proc.join(timeout=2)
            with self._proc_lock:
                self._kernel_procs.pop(node_name, None)
            raise ScheduleError(
                f"joining kernel {node_name!r} failed to start within "
                f"{self.startup_timeout}s")
        console.rebalance(joined=[node_name], depths=self._poll_depths())
        return node_name

    def retire_kernel(self, node_name: str) -> int:
        """Gracefully drain *node_name* and remove it from the cluster.

        The console quiesces, migrates the kernel's thread instances
        (with state) onto the survivors, and only then orders the
        process to exit — no journal replay, no recovery storm.  Returns
        the number of thread instances that moved off.
        """
        console = self._ensure_started()
        with self._proc_lock:
            proc = self._kernel_procs.get(node_name)
            external = node_name in self._external_kernels
        if proc is None and not external:
            raise ValueError(
                f"unknown kernel {node_name!r}; members: "
                f"{list(self.members())}")
        moved = console.rebalance(retired=[node_name],
                                  depths=self._poll_depths())
        # Mark retired BEFORE ordering shutdown so the child monitor and
        # the liveness loop treat the exit as voluntary, not a failure.
        with self._proc_lock:
            self._retired.add(node_name)
            self._external_kernels.discard(node_name)
        try:
            console.request_shutdown(node_name)
        except Exception:
            pass  # already gone; the rebalance has moved everything off
        if proc is not None:
            proc.join(timeout=10)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
            with self._proc_lock:
                self._kernel_procs.pop(node_name, None)
        return moved

    def _autoscale_loop(self) -> None:
        """Drive :class:`ScalingPolicy` from heartbeat queue depths.

        Growth forks fresh kernels; shrink retires only kernels this
        loop added (never seed kernels or explicit :meth:`add_kernel`
        joins), so autoscaling can always fall back to the user's
        topology.
        """
        policy = self.scaling
        assert policy is not None
        interval = max(self.heartbeat_interval, 0.05)
        last_change = time.monotonic()
        while not self._closing.wait(interval):
            console = self._console
            if console is None:
                return
            depths = self._poll_depths()
            if depths is None:
                continue
            with self._proc_lock:
                n_kernels = len((set(self._kernel_procs)
                                 | self._external_kernels) - self._retired)
                shrink_candidates = [k for k in self._elastic_kernels
                                     if k in self._kernel_procs
                                     and k not in self._retired]
            decision = policy.decide(n_kernels, depths,
                                     last_change, time.monotonic())
            if decision == "grow":
                try:
                    name = self.add_kernel()
                except Exception:
                    continue  # mid-recovery or teardown; retry next tick
                with self._proc_lock:
                    self._elastic_kernels.append(name)
                last_change = time.monotonic()
            elif decision == "shrink" and shrink_candidates:
                try:
                    self.retire_kernel(shrink_candidates[-1])
                except Exception:
                    continue
                with self._proc_lock:
                    if shrink_candidates[-1] in self._elastic_kernels:
                        self._elastic_kernels.remove(shrink_candidates[-1])
                last_change = time.monotonic()

    def collect_traces(self, timeout: float = 5.0) -> List[str]:
        """Merge every kernel's trace buffer/metrics into this engine's.

        Runs automatically during :meth:`shutdown`; call it earlier to
        inspect a mid-run timeline.  Returns kernels that failed to
        answer (normally empty).
        """
        console = self._console
        if console is None:
            return []
        return console.collect_traces(self._kernel_procs, timeout=timeout)

    def shutdown(self) -> None:
        """Tear the cluster down: shutdown barrier, then the processes."""
        if self._closed:
            return
        self._closed = True
        console = self._console
        if console is not None and (
                self.tracer is not None or self.metrics is not None):
            # Pull per-kernel trace buffers into the engine tracer BEFORE
            # ordering shutdown, while every peer still answers.
            try:
                console.collect_traces(self._kernel_procs)
            except Exception:
                pass  # observability must never block teardown
        self._closing.set()
        with self._proc_lock:
            procs = dict(self._kernel_procs)
        if console is not None:
            # Stop treating peer errors as failures; we are leaving anyway.
            console._shutdown_requested.set()
            for name in procs:
                try:
                    console.request_shutdown(name)
                except Exception:
                    pass
        for name, proc in procs.items():
            proc.join(timeout=5)
        for name, proc in procs.items():
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=2)
        if console is not None:
            console.shutdown()
            self._console = None
        if self._ns_proc is not None:
            self._ns_proc.terminate()
            self._ns_proc.join(timeout=2)
            self._ns_proc = None
        # Everything is reaped; the GC/exit finalizer has nothing to do.
        self._orphans.clear()

    def __enter__(self) -> "MultiprocessEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # failure injection
    # ------------------------------------------------------------------
    def fail_node(self, node_name: str) -> int:
        """Kill the kernel process hosting *node_name* (SIGKILL).

        An in-flight run observes the death through the process
        sentinel: with ``recover=True`` the console remaps the dead
        kernel's thread instances onto survivors and replays un-acked
        tokens; otherwise the caller fails fast with
        :class:`~repro.runtime.controller.KernelFailure`.  Returns the
        number of thread instances that lived on the killed kernel.
        """
        proc = self._kernel_procs.get(node_name)
        if proc is None:
            raise ValueError(
                f"unknown kernel {node_name!r}; running kernels: "
                f"{sorted(self._kernel_procs)}")
        lost = 0
        seen = set()
        for graph in self._graphs.values():
            for collection in graph.collections():
                if id(collection) in seen:
                    continue
                seen.add(id(collection))
                lost += collection.placements.count(node_name)
        proc.kill()
        proc.join(timeout=5)
        return lost

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, graph: Union[Flowgraph, str], token: Token,
            timeout: float = 60.0) -> Token:
        """Run one activation across the kernel cluster; returns the
        result token delivered back to the console kernel."""
        if isinstance(graph, str):
            graph = self.graph(graph)
        elif graph.name not in self._graphs:
            self.register_graph(graph)
        # Precompile the wire plan for the activation's token type before
        # the hot path — repeat activations reuse the cached plan.
        fastpath.warm(token)
        console = self._ensure_started()
        started = time.monotonic()
        result = console.run(graph, token, timeout=timeout)
        recovered, replayed = console.recovery_snapshot()
        rebalances, tokens_moved, _ = console.rebalance_snapshot()
        self.last_result = RunResult(result, started, time.monotonic(),
                                     recovered=recovered,
                                     replayed_tokens=replayed,
                                     rebalances=rebalances,
                                     tokens_moved=tokens_moved)
        return result
