"""Checkpointing and node-failure recovery (paper §6 future work).

*"The dynamicity of DPS combined with appropriate checkpointing
procedures may also lead to more lightweight approaches for graceful
degradation in case of node failures."*

This module provides that lightweight approach for the simulated
cluster:

- :class:`CheckpointManager` snapshots the state of thread collections
  between activations onto a striped file service (paper Figure 5) —
  checkpoint shards are written round-robin across the storage nodes,
  charging disk and network time;
- :meth:`SimEngine.fail_node <repro.runtime.sim_engine.SimEngine.fail_node>`
  discards every thread living on a node (its state is gone); the
  module-level :func:`fail_node` remains as a deprecated alias;
- :meth:`CheckpointManager.restore` re-creates the threads from the last
  snapshot on the collection's *current* mapping, so recovery is:
  fail → remap the collections away from the dead node → restore →
  replay the iterations since the checkpoint.

The snapshot is a deep copy of each thread's ``__dict__`` (the
distributed data structures live there), priced by
:meth:`~repro.core.DpsThread.state_nbytes`.
"""

from __future__ import annotations

import copy
import itertools
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.threads import DpsThread, ThreadCollection
from .base import DATA_HEADER_BYTES
from .controller import ScheduleError
from .sim_engine import SimEngine

__all__ = ["CheckpointManager", "Checkpoint", "fail_node"]

#: sustained write/read bandwidth of the striped file service per node
CHECKPOINT_DISK_BYTES_PER_SECOND = 30e6

_checkpoint_ids = itertools.count(1)


def fail_node(engine: SimEngine, node_name: str) -> int:
    """Deprecated alias for :meth:`Engine.fail_node`.

    Failure injection is part of the engine API now (it exists on the
    multiprocess engine too, where it kills a kernel process); call
    ``engine.fail_node(node_name)`` directly.
    """
    warnings.warn(
        "repro.runtime.checkpoint.fail_node(engine, node) is deprecated; "
        "call engine.fail_node(node) instead",
        DeprecationWarning, stacklevel=2)
    return engine.fail_node(node_name)


@dataclass
class _ThreadSnapshot:
    collection: ThreadCollection
    index: int
    thread_class: type
    state: dict
    nbytes: int
    storage_node: str


@dataclass
class Checkpoint:
    """One consistent snapshot of a set of thread collections."""

    checkpoint_id: int
    taken_at: float
    snapshots: List[_ThreadSnapshot] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return sum(s.nbytes for s in self.snapshots)

    @property
    def thread_count(self) -> int:
        return len(self.snapshots)


class CheckpointManager:
    """Snapshot/restore of thread-collection state on a storage service.

    ``storage_nodes`` model the striped file system of the paper's
    runtime environment (Figure 5); shards are distributed round-robin.
    """

    def __init__(self, engine: SimEngine,
                 storage_nodes: Optional[List[str]] = None):
        self.engine = engine
        self.storage_nodes = storage_nodes or engine.cluster.node_names
        for node in self.storage_nodes:
            if node not in engine.controllers:
                raise ValueError(f"unknown storage node {node!r}")

    # ------------------------------------------------------------------
    def checkpoint(self, *collections: ThreadCollection) -> Checkpoint:
        """Snapshot the instantiated threads of *collections*.

        Charges one network transfer plus a disk write per thread shard.
        The schedule must be quiescent.
        """
        if not collections:
            raise ValueError("nothing to checkpoint")
        self.engine.check_quiescent()
        ckpt = Checkpoint(next(_checkpoint_ids), self.engine.sim.now)
        storage_cycle = itertools.cycle(self.storage_nodes)

        plan: List[Tuple[str, _ThreadSnapshot]] = []
        for collection in collections:
            for index in range(collection.thread_count):
                node = collection.node_of(index)
                controller = self.engine.controllers[node]
                ts = controller._threads.get((id(collection), index))
                if ts is None:
                    continue  # never instantiated: nothing to save
                state = copy.deepcopy(ts.thread.__dict__)
                nbytes = ts.thread.state_nbytes() + DATA_HEADER_BYTES
                snap = _ThreadSnapshot(
                    collection, index, type(ts.thread), state, nbytes,
                    next(storage_cycle),
                )
                plan.append((node, snap))
                ckpt.snapshots.append(snap)

        def write():
            for src, snap in plan:
                yield self.engine.cluster.network.transfer(
                    self.engine.cluster.node(src),
                    self.engine.cluster.node(snap.storage_node),
                    snap.nbytes,
                )
                yield self.engine.sim.timeout(
                    snap.nbytes / CHECKPOINT_DISK_BYTES_PER_SECOND
                )

        proc = self.engine.sim.spawn(write(), name=f"ckpt:{ckpt.checkpoint_id}")
        self.engine.run_until(proc)
        self.engine.trace("checkpoint", id=ckpt.checkpoint_id,
                          threads=ckpt.thread_count, nbytes=ckpt.nbytes)
        return ckpt

    # ------------------------------------------------------------------
    def restore(self, ckpt: Checkpoint) -> Dict[str, int]:
        """Rebuild the snapshotted threads on their *current* mapping.

        Call after remapping the collections away from failed nodes.
        Charges a disk read on the storage node plus the transfer to each
        thread's (new) home.  Returns a report dict.
        """
        self.engine.check_quiescent()
        report = {"restored": 0, "bytes": 0}

        def read():
            for snap in ckpt.snapshots:
                target = snap.collection.node_of(snap.index)
                if snap.storage_node not in self.engine.controllers:
                    raise ScheduleError(
                        f"checkpoint shard on unknown node {snap.storage_node!r}"
                    )
                yield self.engine.sim.timeout(
                    snap.nbytes / CHECKPOINT_DISK_BYTES_PER_SECOND
                )
                yield self.engine.cluster.network.transfer(
                    self.engine.cluster.node(snap.storage_node),
                    self.engine.cluster.node(target),
                    snap.nbytes,
                )
                controller = self.engine.controllers[target]
                # discard whatever lives there now (stale or lazily created)
                existing = controller._threads.pop(
                    (id(snap.collection), snap.index), None
                )
                if existing is not None and existing.proc is not None \
                        and existing.proc.is_alive:
                    existing.proc.interrupt("restore")
                thread: DpsThread = snap.thread_class.__new__(snap.thread_class)
                thread.__dict__.update(copy.deepcopy(snap.state))
                thread.index = snap.index
                thread.collection_name = snap.collection.name
                controller.adopt_thread(snap.collection, snap.index, thread)
                report["restored"] += 1
                report["bytes"] += snap.nbytes

        proc = self.engine.sim.spawn(read(), name=f"restore:{ckpt.checkpoint_id}")
        self.engine.run_until(proc)
        self.engine.trace("restore", id=ckpt.checkpoint_id, **report)
        return report
