"""Game of Life as a parallel service (paper Figure 10 and Table 2).

The paper extends the Game of Life with an additional graph returning the
current state of a world subset, possibly distributed over several compute
nodes.  A visualization client calls this graph — an inter-application
graph call that the client sees as a simple leaf operation, preserving
pipelining and token queuing.

:class:`GameOfLifeService` adds that ``read`` graph: the split posts one
read-part request per worker whose band intersects the requested block,
workers copy the overlapping part out of their band (charging memory-read
time), and the merge reassembles the block.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..cluster import costs
from ..core import (
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    SplitOperation,
    route_fn,
)
from ..runtime import SimEngine
from ..serial import Buffer, ComplexToken, SimpleToken
from ..simkernel import Event
from .gameoflife import (
    DistributedGameOfLife,
    GolExchangeThread,
    GolMasterThread,
)

__all__ = ["GolReadRequest", "GolBlockToken", "GameOfLifeService"]


class GolReadRequest(SimpleToken):
    """Read the block ``[row:row+height, col:col+width]`` of the world."""

    def __init__(self, row: int = 0, col: int = 0,
                 height: int = 0, width: int = 0):
        self.row = row
        self.col = col
        self.height = height
        self.width = width


class GolReadPartCmd(SimpleToken):
    def __init__(self, worker: int = 0, row0: int = 0, row1: int = 0,
                 col: int = 0, width: int = 0, out_row: int = 0):
        self.worker = worker
        self.row0 = row0          # global start row of the part
        self.row1 = row1          # global end row (exclusive)
        self.col = col
        self.width = width
        self.out_row = out_row    # row offset within the output block


class GolBlockPart(ComplexToken):
    def __init__(self, worker: int = 0, out_row: int = 0, data=None):
        self.worker = worker
        self.out_row = out_row
        self.data = Buffer(data if data is not None else [])


class GolBlockToken(ComplexToken):
    """The assembled world subset returned to the caller."""

    def __init__(self, data=None, row: int = 0, col: int = 0):
        self.data = Buffer(data if data is not None else [])
        self.row = row
        self.col = col


_PartByWorker = route_fn("GolPartByWorker", lambda tok, n: tok.worker % n)


class GolReadSplit(SplitOperation):
    """(a) split the request to the workers owning intersecting bands."""

    thread_type = GolMasterThread
    in_types = (GolReadRequest,)
    out_types = (GolReadPartCmd,)

    #: global band boundaries (len n_workers+1); set by the class factory
    bounds: tuple = (0, 0)

    def execute(self, tok: GolReadRequest):
        r0, r1 = tok.row, tok.row + tok.height
        bounds = self.bounds
        if not (0 <= r0 < r1 <= bounds[-1]):
            raise ValueError(
                f"read rows [{r0}, {r1}) outside world of {bounds[-1]} rows"
            )
        posted = 0
        for w in range(len(bounds) - 1):
            lo = max(r0, bounds[w])
            hi = min(r1, bounds[w + 1])
            if lo < hi:
                self.post(GolReadPartCmd(
                    worker=w, row0=lo, row1=hi, col=tok.col,
                    width=tok.width, out_row=lo - r0,
                ))
                posted += 1
        if posted == 0:  # pragma: no cover - excluded by the range check
            raise ValueError("read request intersects no band")


class GolReadPart(LeafOperation):
    """(b) copy the overlapping band rows; charge the per-cell read cost."""

    thread_type = GolExchangeThread
    in_types = (GolReadPartCmd,)
    out_types = (GolBlockPart,)

    def execute(self, tok: GolReadPartCmd):
        t = self.thread
        lo = tok.row0 - t.row_start
        hi = tok.row1 - t.row_start
        part = t.band[lo:hi, tok.col:tok.col + tok.width].copy()
        yield self.charge_flops(costs.gol_read_flops(part.size))
        yield self.post(GolBlockPart(tok.worker, tok.out_row, part))


class GolReadMerge(MergeOperation):
    """(c) merge the parts into the requested subset."""

    thread_type = GolMasterThread
    in_types = (GolBlockPart,)
    out_types = (GolBlockToken,)

    def execute(self, tok: GolBlockPart):
        parts = []
        while tok is not None:
            parts.append((tok.out_row, tok.data.array))
            tok = yield self.next_token()
        parts.sort(key=lambda p: p[0])
        yield self.post(GolBlockToken(np.vstack([p[1] for p in parts])))


class GameOfLifeService(DistributedGameOfLife):
    """A Game of Life that additionally exposes the world-read graph.

    ``read_graph`` is registered with the engine under
    ``gol<uid>.read``; clients may call it by name through
    :meth:`~repro.core.ops.Operation.call_graph` (inter-application graph
    call) or drive it directly with :meth:`read_block` /
    :meth:`start_read`.
    """

    def __init__(self, engine: SimEngine, world, worker_nodes: List[str],
                 master_node: Optional[str] = None):
        super().__init__(engine, world, worker_nodes, master_node)
        rows = self.world0.shape[0]
        bounds = tuple(
            int(b) for b in np.linspace(0, rows, self.n_workers + 1).astype(int)
        )
        uid = self.load_graph.name.split(".")[0]  # "gol<uid>"
        split_cls = type(f"GolReadSplit_{uid}", (GolReadSplit,),
                         {"bounds": bounds})
        b = (
            FlowgraphNode(split_cls, self._master)
            >> FlowgraphNode(GolReadPart, self._exchange, _PartByWorker)
            >> FlowgraphNode(GolReadMerge, self._master)
        )
        self.read_graph = Flowgraph(b, f"{uid}.read")
        engine.register_graph(self.read_graph, app_name=uid)

    @property
    def read_graph_name(self) -> str:
        return self.read_graph.name

    def read_block(self, row: int, col: int, height: int, width: int) -> np.ndarray:
        """Synchronous block read (runs the engine to completion).

        Engine-agnostic like :meth:`~DistributedGameOfLife.gather`: the
        same call works on the simulated, threaded and multiprocess
        engines (and therefore on the resident service path, which runs
        this graph through the console kernel).
        """
        result = self._run(
            self.read_graph, GolReadRequest(row, col, height, width)
        )
        return result.token.data.array

    def start_read(self, row: int, col: int, height: int, width: int,
                   driver_node: Optional[str] = None) -> Event:
        """Asynchronous read for driver processes; succeeds with RunResult."""
        return self.engine.start(
            self.read_graph,
            GolReadRequest(row, col, height, width),
            driver_node=driver_node,
        )
