"""The paper's tutorial application: parallel lowercase → uppercase.

Mirrors the source code of section 3 of the paper: a ``SplitString``
operation posts one ``CharToken`` per character, ``ToUpperCase`` leaf
operations convert characters on a collection of compute threads, and
``MergeString`` reassembles the string in position order.

This is deliberately the most literal possible transcription of the C++
tutorial; it exists to validate the programming model and to serve as the
quickstart example.
"""

from __future__ import annotations

from typing import Tuple

from ..core import (
    ConstantRoute,
    DpsThread,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    SplitOperation,
    ThreadCollection,
    route_fn,
)
from ..serial import ComplexToken, SimpleToken

__all__ = [
    "StringToken",
    "CharToken",
    "MainThread",
    "ComputeThread",
    "SplitString",
    "ToUpperCase",
    "MergeString",
    "RoundRobinByPos",
    "build_uppercase_graph",
]


class StringToken(ComplexToken):
    """A whole character string."""

    def __init__(self, text: str = ""):
        self.text = text


class CharToken(SimpleToken):
    """One character and its position within the string (paper §3)."""

    def __init__(self, chr: str = "", pos: int = 0, total: int = 0):
        self.chr = chr
        self.pos = pos
        #: String length, carried so the merge can size its output.
        self.total = total


class MainThread(DpsThread):
    """Hosts the split and merge operations."""


class ComputeThread(DpsThread):
    """Hosts the per-character uppercase leaf operations."""


class SplitString(SplitOperation):
    """Post one token for each character of the input string."""

    thread_type = MainThread
    in_types = (StringToken,)
    out_types = (CharToken,)

    def execute(self, tok: StringToken):
        for i, c in enumerate(tok.text):
            self.post(CharToken(c, i, len(tok.text)))


class ToUpperCase(LeafOperation):
    """Post the uppercase equivalent of the incoming character."""

    thread_type = ComputeThread
    in_types = (CharToken,)
    out_types = (CharToken,)

    def execute(self, tok: CharToken):
        self.post(CharToken(tok.chr.upper(), tok.pos, tok.total))


class MergeString(MergeOperation):
    """Store incoming characters at their position; post the string."""

    thread_type = MainThread
    in_types = (CharToken,)
    out_types = (StringToken,)

    def execute(self, tok: CharToken):
        chars = [""] * tok.total
        while tok is not None:
            chars[tok.pos] = tok.chr
            tok = yield self.next_token()  # waitForNextToken()
        yield self.post(StringToken("".join(chars)))


#: The paper's ROUTE macro example:
#: ``ROUTE(RoundRobinRoute, ComputeThread, CharToken, pos % threadCount())``
RoundRobinByPos = route_fn("RoundRobinByPos", lambda tok, n: tok.pos % n)


def build_uppercase_graph(
    main_mapping: str,
    worker_mapping: str,
    name: str = "uppercase",
) -> Tuple[Flowgraph, ThreadCollection, ThreadCollection]:
    """Build the split-compute-merge tutorial graph (paper Figure 2).

    Returns ``(graph, main_collection, worker_collection)``.
    """
    main = ThreadCollection(MainThread, "main").map(main_mapping)
    workers = ThreadCollection(ComputeThread, "proc").map(worker_mapping)
    builder = (
        FlowgraphNode(SplitString, main, ConstantRoute)
        >> FlowgraphNode(ToUpperCase, workers, RoundRobinByPos)
        >> FlowgraphNode(MergeString, main, ConstantRoute)
    )
    return Flowgraph(builder, name), main, workers
