"""Distributed block LU factorization with partial pivoting (Fig. 11–15).

The matrix is split into ``s`` block-columns of width ``r = n/s``,
distributed round-robin over the workers (column ``j`` lives on worker
``j % p``).  Following the paper's Figure 12, the flow graph contains one
gray segment per block-column:

(a/e) factor the panel of column ``k`` and stream out triangular-solve
      requests (carrying the panel and pivots) to the other columns;
(b)   trsm at each column owner: apply the row flips, solve
      ``L_kk · T = A_kj``; notify;
(f)   row-flip orders to the already-factored columns ``j < k``;
(c)   a *stream* collects the notifications and streams out
      multiplication orders — no barrier;
(d)   multiply: ``A_tail,j -= L_tail,k · T_kj``; notify;
(e)   a *stream* at the owner of column ``k+1`` factors the next panel as
      soon as *its* column's multiplication completes, streaming out the
      next round of trsm requests while other columns are still
      multiplying.

The non-pipelined variant replaces the two streams with merge+split
barriers (the paper's Figure 15 comparison).

The factorization is *really* computed (numpy panels, scipy triangular
solves); virtual time is charged through the cost models, optionally
scaled (``scale=α`` prices every operation as if the matrix were ``α·n``
— the benches factor a real 1024² matrix while reproducing the virtual
timing of the paper's 4096² runs; see DESIGN.md §2).
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional

import numpy as np
from scipy.linalg import solve_triangular

from ..cluster import costs
from ..core import (
    ConstantRoute,
    DpsThread,
    Flowgraph,
    FlowgraphBuilder,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    SplitOperation,
    StreamOperation,
    ThreadCollection,
    route_fn,
)
from ..runtime import RunResult, coerce_run_result
from ..serial import Buffer, ComplexToken, SimpleToken, Vector

__all__ = ["DistributedLU", "factor_panel"]

_instance_counter = itertools.count(1)


# ---------------------------------------------------------------------------
# numeric kernels
# ---------------------------------------------------------------------------

def factor_panel(panel: np.ndarray) -> np.ndarray:
    """In-place LU of a tall panel with partial pivoting.

    Returns the pivot row indices (panel-local, one per column): classic
    right-looking elimination with row swaps — the paper's step 1.
    """
    rows, r = panel.shape
    if rows < r:
        raise ValueError("panel must be at least as tall as wide")
    pivots = np.empty(r, dtype=np.int64)
    for c in range(r):
        p = c + int(np.argmax(np.abs(panel[c:, c])))
        pivots[c] = p
        if p != c:
            panel[[c, p]] = panel[[p, c]]
        diag = panel[c, c]
        if diag == 0.0:
            raise ZeroDivisionError("matrix is singular to working precision")
        panel[c + 1 :, c] /= diag
        if c + 1 < r:
            panel[c + 1 :, c + 1 :] -= np.outer(
                panel[c + 1 :, c], panel[c, c + 1 :]
            )
    return pivots


def _apply_pivots(block: np.ndarray, pivots: np.ndarray) -> None:
    """Apply panel-local row swaps to *block* (same row range), in order."""
    for c, p in enumerate(pivots):
        p = int(p)
        if p != c:
            block[[c, p]] = block[[p, c]]


# ---------------------------------------------------------------------------
# tokens (wire sizes optionally scaled; see DistributedLU(scale=...))
# ---------------------------------------------------------------------------

class _LUToken(ComplexToken, register=False):
    """Base for LU tokens: supports virtual wire-size scaling.

    ``wire_scale2`` is normally the class default (1.0); operations of a
    scaled factorization set an instance attribute (scale²) so that the
    network model prices the token as if its payload belonged to the
    virtual, larger matrix.
    """

    wire_scale2: float = 1.0

    def payload_nbytes(self) -> int:
        return int(super().payload_nbytes() * self.wire_scale2)


class LUStartToken(SimpleToken):
    def __init__(self, n: int = 0):
        self.n = n


class LULoadToken(ComplexToken):
    def __init__(self, a=None):
        self.a = Buffer(a if a is not None else [])


class LUColumnToken(_LUToken):
    def __init__(self, j: int = 0, data=None, pivots=None):
        self.j = j
        self.data = Buffer(data if data is not None else [])
        #: pivot vector of stage j when this worker factored it
        self.pivots = Buffer(pivots if pivots is not None else
                             np.empty(0, np.int64))


class LUAckToken(SimpleToken):
    def __init__(self, j: int = 0):
        self.j = j


class LUSyncToken(SimpleToken):
    def __init__(self, count: int = 0):
        self.count = count


class LUTrsmRequest(_LUToken):
    """Panel + pivots of stage *k*, bound for the owner of column *j*."""

    def __init__(self, k: int = 0, j: int = 0, panel=None, pivots=None):
        self.k = k
        self.j = j
        self.panel = Buffer(panel if panel is not None else [])
        self.pivots = Buffer(pivots if pivots is not None else [])


class LURowFlipOrder(_LUToken):
    """Apply stage-*k* pivots to already-factored column *j* (j < k)."""

    def __init__(self, k: int = 0, j: int = 0, pivots=None):
        self.k = k
        self.j = j
        self.pivots = Buffer(pivots if pivots is not None else [])


class LUTrsmDone(SimpleToken):
    def __init__(self, k: int = 0, j: int = 0):
        self.k = k
        self.j = j


class LURowFlipDone(SimpleToken):
    def __init__(self, k: int = 0, j: int = 0):
        self.k = k
        self.j = j


class LUMultOrder(SimpleToken):
    def __init__(self, k: int = 0, j: int = 0):
        self.k = k
        self.j = j


class LUMultDone(SimpleToken):
    def __init__(self, k: int = 0, j: int = 0):
        self.k = k
        self.j = j


class LUMultWork(_LUToken):
    """Operands of one trailing update, as same-node references."""

    def __init__(self, k: int = 0, j: int = 0, l_tail=None, t_block=None,
                 col_tail=None):
        self.k = k
        self.j = j
        self.l_tail = Buffer(l_tail if l_tail is not None else
                             np.empty((0, 0)))
        self.t_block = Buffer(t_block if t_block is not None else
                              np.empty((0, 0)))
        self.col_tail = Buffer(col_tail if col_tail is not None else
                               np.empty((0, 0)))


class LUStageToken(SimpleToken):
    """Barrier hand-over in the non-pipelined variant."""

    def __init__(self, k: int = 0, js=()):
        self.k = k
        self.js = list(js)


class LUFinishedToken(SimpleToken):
    def __init__(self, s: int = 0):
        self.s = s


class LUMatrixToken(_LUToken):
    """Gather result: the factored matrix plus the pivot table."""

    def __init__(self, a=None, pivots=None):
        self.a = Buffer(a if a is not None else [])
        self.pivots = Vector(pivots or ())


# ---------------------------------------------------------------------------
# worker thread: the distributed matrix
# ---------------------------------------------------------------------------

class LUWorkerThread(DpsThread):
    def __init__(self):
        #: column index -> (n, r) array, factored in place
        self.cols: Dict[int, np.ndarray] = {}
        #: stage -> (panel, pivots) received with trsm requests
        self.panels: Dict[int, tuple] = {}
        #: stage -> remaining local multiplications before pruning
        self.panel_uses: Dict[int, int] = {}
        #: pivot vectors of the stages this worker factored
        self.pivots: Dict[int, np.ndarray] = {}
        #: per previously-factored column: next expected flip stage and
        #: out-of-order buffer (guards against network reordering)
        self.flip_next: Dict[int, int] = {}
        self.flip_buffer: Dict[int, Dict[int, np.ndarray]] = {}


class LUMultThread(DpsThread):
    """Executes the trailing-update multiplications.

    A separate thread collection co-mapped with the worker threads, as the
    paper does for the multiplication construct (Figure 14: "for load
    balancing purposes, [the multiplication] is carried out in a separate
    thread collection") — on the bi-processor nodes the long-running
    multiplies use the second CPU instead of head-of-line-blocking the
    column-management thread.
    """


_ByJ = route_fn("LUByJ", lambda tok, n: tok.j % n)
_ByK = route_fn("LUByK", lambda tok, n: tok.k % n)
_ByKNext = route_fn("LUByKNext", lambda tok, n: (tok.k + 1) % n)


class _LUOp:
    """Mixin carrying per-factorization geometry (set by a class factory)."""

    n: int = 0          # matrix size
    r: int = 0          # block width
    s: int = 0          # number of block columns
    scale: float = 1.0  # virtual size multiplier

    @classmethod
    def vdim(cls, x: float) -> float:
        """A dimension scaled to the virtual matrix size."""
        return x * cls.scale

    @classmethod
    def scaled(cls, tok):
        """Stamp a heavyweight token with the virtual wire scale."""
        if cls.scale != 1.0:
            tok.wire_scale2 = cls.scale ** 2
        return tok


# ---------------------------------------------------------------------------
# load / gather
# ---------------------------------------------------------------------------

class LULoadSplit(_LUOp, SplitOperation):
    thread_type = LUWorkerThread
    in_types = (LULoadToken,)
    out_types = (LUColumnToken,)

    def execute(self, tok: LULoadToken):
        a = tok.a.array
        for j in range(self.s):
            col = np.ascontiguousarray(a[:, j * self.r : (j + 1) * self.r])
            self.post(LUColumnToken(j, col))


class LULoadColumn(LeafOperation):
    thread_type = LUWorkerThread
    in_types = (LUColumnToken,)
    out_types = (LUAckToken,)

    def execute(self, tok: LUColumnToken):
        t = self.thread
        t.cols[tok.j] = tok.data.array.astype(np.float64, copy=True)
        t.flip_next[tok.j] = tok.j + 1
        t.flip_buffer[tok.j] = {}
        self.post(LUAckToken(tok.j))


class LUSyncMerge(MergeOperation):
    thread_type = LUWorkerThread
    in_types = (LUAckToken,)
    out_types = (LUSyncToken,)

    def execute(self, tok):
        count = 0
        while tok is not None:
            count += 1
            tok = yield self.next_token()
        yield self.post(LUSyncToken(count))


class LUGatherSplit(_LUOp, SplitOperation):
    thread_type = LUWorkerThread
    in_types = (LUStartToken,)
    out_types = (LUMultOrder,)  # reused as "read column j" command

    def execute(self, tok):
        for j in range(self.s):
            self.post(LUMultOrder(0, j))


class LUReadColumn(_LUOp, LeafOperation):
    thread_type = LUWorkerThread
    in_types = (LUMultOrder,)
    out_types = (LUColumnToken,)

    def execute(self, tok):
        t = self.thread
        col = t.cols[tok.j].copy()
        # attach this worker's pivot vector for stage j (it factored it)
        piv = t.pivots.get(tok.j)
        self.post(LUColumnToken(tok.j, col, piv))


class LUGatherMerge(_LUOp, MergeOperation):
    thread_type = LUWorkerThread
    in_types = (LUColumnToken,)
    out_types = (LUMatrixToken,)

    def execute(self, tok):
        cols: Dict[int, np.ndarray] = {}
        pivots: Dict[int, np.ndarray] = {}
        while tok is not None:
            cols[tok.j] = tok.data.array
            if len(tok.pivots.array):
                pivots[tok.j] = tok.pivots.array
            tok = yield self.next_token()
        a = np.hstack([cols[j] for j in range(self.s)])
        piv_list = [Buffer(pivots[k]) for k in range(self.s)]
        yield self.post(LUMatrixToken(a, piv_list))


# ---------------------------------------------------------------------------
# factorization helpers (run on the owning worker thread)
# ---------------------------------------------------------------------------

def _do_factor(op: _LUOp, thread: LUWorkerThread, k: int) -> np.ndarray:
    """Factor the stage-*k* panel in place; returns the pivot vector."""
    col = thread.cols[k]
    panel = col[k * op.r :, :]
    pivots = factor_panel(panel)
    thread.pivots[k] = pivots
    return pivots


def _factor_flops(op: _LUOp, k: int) -> float:
    return costs.lu_panel_flops(op.vdim(op.n - k * op.r), op.vdim(op.r))


def _post_stage_requests(op, thread: LUWorkerThread, k: int,
                         pivots: np.ndarray, ready_js: List[int]) -> int:
    """Post row-flip orders (j < k) and trsm requests for *ready_js*."""
    panel = thread.cols[k][k * op.r :, :]
    for j in range(k):
        op.post(op.scaled(LURowFlipOrder(k, j, pivots.copy())))
    for j in ready_js:
        op.post(op.scaled(LUTrsmRequest(k, j, panel.copy(), pivots.copy())))
    return k + len(ready_js)


class LUStart(_LUOp, SplitOperation):
    """(a) factor the first panel and stream out the trsm requests."""

    thread_type = LUWorkerThread
    in_types = (LUStartToken,)
    out_types = (LUTrsmRequest,)

    def execute(self, tok: LUStartToken):
        t = self.thread
        pivots = _do_factor(self, t, 0)
        yield self.charge_flops(_factor_flops(self, 0))
        panel = t.cols[0]
        for j in range(1, self.s):
            self.post(self.scaled(
                LUTrsmRequest(0, j, panel.copy(), pivots.copy())
            ))


class LUTrsm(_LUOp, LeafOperation):
    """(b) apply row flips and solve the triangular system for column j."""

    thread_type = LUWorkerThread
    in_types = (LUTrsmRequest,)
    out_types = (LUTrsmDone,)

    def execute(self, tok: LUTrsmRequest):
        t = self.thread
        k, j, r = tok.k, tok.j, self.r
        panel = tok.panel.array
        pivots = tok.pivots.array
        if k not in t.panels:
            t.panels[k] = (panel, pivots)
            t.panel_uses[k] = sum(1 for jj in t.cols if jj > k)
        col = t.cols[j]
        tail = col[k * r :, :]
        _apply_pivots(tail, pivots)
        l_kk = panel[:r, :]
        top = tail[:r, :]
        tail[:r, :] = solve_triangular(l_kk, top, lower=True, unit_diagonal=True)
        # pivot application (memcpy) + triangular solve
        yield self.charge_seconds(
            2 * self.vdim(r) * self.vdim(r) * 8 / costs.MEMCPY_BYTES_PER_SECOND
        )
        yield self.charge_flops(costs.trsm_flops(self.vdim(r), self.vdim(r)))
        yield self.post(LUTrsmDone(k, j))


class LURowFlip(_LUOp, LeafOperation):
    """(f) apply stage pivots to an already-factored column."""

    thread_type = LUWorkerThread
    in_types = (LURowFlipOrder,)
    out_types = (LURowFlipDone,)

    def execute(self, tok: LURowFlipOrder):
        t = self.thread
        j = tok.j
        t.flip_buffer[j][tok.k] = tok.pivots.array
        # apply in stage order even if the network reordered deliveries
        while t.flip_next[j] in t.flip_buffer[j]:
            k = t.flip_next[j]
            pivots = t.flip_buffer[j].pop(k)
            _apply_pivots(t.cols[j][k * self.r :, :], pivots)
            t.flip_next[j] = k + 1
        yield self.charge_seconds(
            2 * self.vdim(self.r) * self.vdim(self.r) * 8
            / costs.MEMCPY_BYTES_PER_SECOND
        )
        yield self.post(LURowFlipDone(tok.k, j))


class LUCollect(_LUOp, StreamOperation):
    """(c) stream multiplication orders as the trsm notifications arrive."""

    thread_type = LUWorkerThread
    in_types = (LUTrsmDone, LURowFlipDone)
    out_types = (LUMultOrder,)

    def execute(self, tok):
        # bare posts: with one worker the matching merge shares this
        # thread, so a yielded (blocking) post could deadlock on the
        # flow-control window; the controller queues bare posts instead
        while tok is not None:
            if isinstance(tok, LUTrsmDone):
                self.post(LUMultOrder(tok.k, tok.j))
            tok = yield self.next_token()


class LUPrepareMult(_LUOp, LeafOperation):
    """(d, part 1) look up the operands and hand them to the multiply
    thread on the same node (zero-copy pointer pass)."""

    thread_type = LUWorkerThread
    in_types = (LUMultOrder,)
    out_types = (LUMultWork,)

    def execute(self, tok: LUMultOrder):
        t = self.thread
        k, j, r = tok.k, tok.j, self.r
        panel, _pivots = t.panels[k]
        col = t.cols[j]
        work = LUMultWork(
            k, j,
            l_tail=panel[r:, :],
            t_block=col[k * r : (k + 1) * r, :],
            col_tail=col[(k + 1) * r :, :],
        )
        t.panel_uses[k] -= 1
        if t.panel_uses[k] == 0:
            del t.panels[k], t.panel_uses[k]
        self.post(work)


class LUMultExec(_LUOp, LeafOperation):
    """(d, part 2) ``A_tail,j -= L_tail,k · T_kj`` on the multiply thread."""

    thread_type = LUMultThread
    in_types = (LUMultWork,)
    out_types = (LUMultDone,)

    def execute(self, tok: LUMultWork):
        l_tail = tok.l_tail.array
        if l_tail.shape[0]:
            # in-place update of the owning thread's column (same node)
            tok.col_tail.array[...] -= l_tail @ tok.t_block.array
        rows_tail = self.n - (tok.k + 1) * self.r
        yield self.charge_flops(
            costs.matmul_accumulate_flops(
                self.vdim(rows_tail), self.vdim(self.r), self.vdim(self.r)
            )
        )
        yield self.post(LUMultDone(tok.k, tok.j))


class LUNext(_LUOp, StreamOperation):
    """(e) factor the next panel as soon as its column completes; stream
    out the next stage's requests while other columns still multiply."""

    thread_type = LUWorkerThread
    in_types = (LUMultDone,)
    out_types = (LUTrsmRequest, LURowFlipOrder)

    def execute(self, tok):
        t = self.thread
        k_next = tok.k + 1
        waiting: List[int] = []
        factored = False
        while tok is not None:
            j = tok.j
            if j == k_next and not factored:
                pivots = _do_factor(self, t, k_next)
                yield self.charge_flops(_factor_flops(self, k_next))
                _post_stage_requests(self, t, k_next, pivots, waiting)
                waiting = []
                factored = True
            elif factored:
                panel = t.cols[k_next][k_next * self.r :, :]
                self.post(self.scaled(
                    LUTrsmRequest(k_next, j, panel.copy(),
                                  t.pivots[k_next].copy())
                ))
            else:
                waiting.append(j)
            tok = yield self.next_token()
        if not factored:  # pragma: no cover - defensive
            raise RuntimeError(f"stage {k_next} never saw its own column")


class LUNextFinal(LUNext):
    """The last gray segment: only row flips remain after the factor."""

    out_types = (LURowFlipOrder,)


class LUFinalMerge(_LUOp, MergeOperation):
    """(g) collect the final row-flip notifications: termination."""

    thread_type = LUWorkerThread
    in_types = (LURowFlipDone,)
    out_types = (LUFinishedToken,)

    def execute(self, tok):
        while tok is not None:
            tok = yield self.next_token()
        yield self.post(LUFinishedToken(self.s))


# -- non-pipelined (barrier) variants ---------------------------------------

class LUCollectMerge(_LUOp, MergeOperation):
    """Barrier replacement for (c): wait for every notification."""

    thread_type = LUWorkerThread
    in_types = (LUTrsmDone, LURowFlipDone)
    out_types = (LUStageToken,)

    def execute(self, tok):
        k = tok.k
        js: List[int] = []
        while tok is not None:
            if isinstance(tok, LUTrsmDone):
                js.append(tok.j)
            tok = yield self.next_token()
        yield self.post(LUStageToken(k, sorted(js)))


class LUCollectSplit(_LUOp, SplitOperation):
    thread_type = LUWorkerThread
    in_types = (LUStageToken,)
    out_types = (LUMultOrder,)

    def execute(self, tok: LUStageToken):
        for j in tok.js:
            self.post(LUMultOrder(tok.k, j))


class LUNextMerge(_LUOp, MergeOperation):
    """Barrier replacement for (e): wait for every multiplication."""

    thread_type = LUWorkerThread
    in_types = (LUMultDone,)
    out_types = (LUStageToken,)

    def execute(self, tok):
        k = tok.k
        js: List[int] = []
        while tok is not None:
            js.append(tok.j)
            tok = yield self.next_token()
        yield self.post(LUStageToken(k, sorted(js)))


class LUNextSplit(_LUOp, SplitOperation):
    """Factor the next panel only after the barrier; then fan out."""

    thread_type = LUWorkerThread
    in_types = (LUStageToken,)
    out_types = (LUTrsmRequest, LURowFlipOrder)

    def execute(self, tok: LUStageToken):
        t = self.thread
        k_next = tok.k + 1
        pivots = _do_factor(self, t, k_next)
        yield self.charge_flops(_factor_flops(self, k_next))
        ready = [j for j in tok.js if j != k_next]
        _post_stage_requests(self, t, k_next, pivots, ready)


class LUNextSplitFinal(LUNextSplit):
    out_types = (LURowFlipOrder,)


# ---------------------------------------------------------------------------
# the application wrapper
# ---------------------------------------------------------------------------

class DistributedLU:
    """A distributed block LU factorization on a simulated cluster.

    Parameters
    ----------
    engine:
        the engine to run on — simulated cluster (virtual timing),
        threaded or multiprocess (wall-clock timing).
    a:
        the (n, n) matrix to factor; n must be divisible by *s*.
    s:
        number of block columns (>= 2); column j lives on worker j % p.
    worker_nodes:
        cluster nodes hosting the workers (p = len(worker_nodes)).
    pipelined:
        True builds the stream-operation graph, False the merge+split
        barrier variant (the Figure 15 comparison).
    scale:
        virtual size multiplier: compute and wire costs are charged as if
        the matrix were ``scale·n`` (the schedule structure is identical).
    """

    def __init__(
        self,
        engine,
        a: np.ndarray,
        s: int,
        worker_nodes: List[str],
        pipelined: bool = True,
        scale: float = 1.0,
    ):
        a = np.asarray(a, dtype=np.float64)
        n = a.shape[0]
        if a.shape != (n, n):
            raise ValueError("matrix must be square")
        if s < 2:
            raise ValueError("need at least 2 block columns (s >= 2)")
        if n % s:
            raise ValueError(f"matrix size {n} not divisible by s={s}")
        if not worker_nodes:
            raise ValueError("need at least one worker node")
        self.engine = engine
        self.a0 = a
        self.n, self.s, self.r = n, s, n // s
        self.p = len(worker_nodes)
        self.pipelined = pipelined
        uid = next(_instance_counter)
        self._workers = ThreadCollection(
            LUWorkerThread, f"lu{uid}-w"
        ).map_nodes(worker_nodes)
        # multiplications run in a separate collection co-mapped with the
        # workers (paper Figure 14) so they use the second CPU
        self._mult_threads = ThreadCollection(
            LUMultThread, f"lu{uid}-m"
        ).map_nodes(worker_nodes)

        geometry = {"n": n, "r": self.r, "s": s, "scale": float(scale)}
        self._ops = {
            cls.__name__: type(f"{cls.__name__}_{uid}", (cls,), geometry)
            for cls in (
                LULoadSplit, LUGatherSplit, LUReadColumn, LUGatherMerge,
                LUStart, LUTrsm, LURowFlip, LUCollect, LUPrepareMult,
                LUMultExec, LUNext, LUNextFinal, LUFinalMerge,
                LUCollectMerge, LUCollectSplit, LUNextMerge, LUNextSplit,
                LUNextSplitFinal,
            )
        }
        self.load_graph = self._build_load(uid)
        self.gather_graph = self._build_gather(uid)
        self.lu_graph = self._build_lu(uid)
        for g in (self.load_graph, self.gather_graph, self.lu_graph):
            engine.register_graph(g, app_name=f"lu{uid}")
        self._loaded = False

    # -- graph construction ----------------------------------------------
    def _node(self, name: str, route=ConstantRoute) -> FlowgraphNode:
        collection = (
            self._mult_threads if name == "LUMultExec" else self._workers
        )
        return FlowgraphNode(self._ops[name], collection, route)

    def _build_load(self, uid: int) -> Flowgraph:
        b = (
            self._node("LULoadSplit")
            >> FlowgraphNode(LULoadColumn, self._workers, _ByJ)
            >> FlowgraphNode(LUSyncMerge, self._workers, ConstantRoute)
        )
        return Flowgraph(b, f"lu{uid}.load")

    def _build_gather(self, uid: int) -> Flowgraph:
        b = (
            self._node("LUGatherSplit")
            >> self._node("LUReadColumn", _ByJ)
            >> self._node("LUGatherMerge", ConstantRoute)
        )
        return Flowgraph(b, f"lu{uid}.gather")

    def _build_lu(self, uid: int) -> Flowgraph:
        """One gray segment per block column (paper Figure 12)."""
        s = self.s
        start = self._node("LUStart", ConstantRoute)
        builder = start.as_builder()
        prev = start  # the node whose outputs feed stage k's trsm/flips
        for k in range(s - 1):
            final = k == s - 2
            trsm = self._node("LUTrsm", _ByJ)
            builder += prev >> trsm
            if k >= 1:
                flip = self._node("LURowFlip", _ByJ)
                builder += prev >> flip
            if self.pipelined:
                collect = self._node("LUCollect", _ByK)
                builder += trsm >> collect
                if k >= 1:
                    builder += flip >> collect
                prep = self._node("LUPrepareMult", _ByJ)
                builder += collect >> prep
                mult = self._node("LUMultExec", _ByJ)
                builder += prep >> mult
                nxt = self._node("LUNextFinal" if final else "LUNext",
                                 _ByKNext)
                builder += mult >> nxt
                prev = nxt
            else:
                cmerge = self._node("LUCollectMerge", _ByK)
                builder += trsm >> cmerge
                if k >= 1:
                    builder += flip >> cmerge
                csplit = self._node("LUCollectSplit", _ByK)
                builder += cmerge >> csplit
                prep = self._node("LUPrepareMult", _ByJ)
                builder += csplit >> prep
                mult = self._node("LUMultExec", _ByJ)
                builder += prep >> mult
                nmerge = self._node("LUNextMerge", _ByKNext)
                builder += mult >> nmerge
                nsplit = self._node(
                    "LUNextSplitFinal" if final else "LUNextSplit", _ByKNext
                )
                builder += nmerge >> nsplit
                prev = nsplit
        # the last stage posts only row flips; collect them to terminate
        last_flip = self._node("LURowFlip", _ByJ)
        final_merge = self._node("LUFinalMerge", ConstantRoute)
        builder += prev >> last_flip >> final_merge
        return Flowgraph(builder, f"lu{uid}.factor")

    def _run(self, graph: Flowgraph, token) -> RunResult:
        """Engine-agnostic run: normalize the outcome to a RunResult."""
        started = time.monotonic()
        outcome = self.engine.run(graph, token)
        return coerce_run_result(outcome, started, time.monotonic())

    # -- public API ----------------------------------------------------------
    def load(self) -> RunResult:
        """Distribute the block columns to the workers."""
        result = self._run(self.load_graph, LULoadToken(self.a0))
        self._loaded = True
        return result

    def run(self) -> RunResult:
        """Run the factorization; returns its RunResult (virtual or wall
        time, depending on the engine)."""
        if not self._loaded:
            raise RuntimeError("call load() before run()")
        return self._run(self.lu_graph, LUStartToken(self.n))

    def gather(self) -> tuple[np.ndarray, List[np.ndarray]]:
        """Collect the factored matrix and the per-stage pivot vectors."""
        result = self._run(self.gather_graph, LUStartToken(self.n))
        tok = result.token
        pivots = [p.array for p in tok.pivots]
        return tok.a.array, pivots

    # -- verification ----------------------------------------------------
    def factors(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (P·A row order, L, U) reconstructed from the workers."""
        fact, pivots = self.gather()
        n, r = self.n, self.r
        lower = np.tril(fact, -1)
        np.fill_diagonal(lower, 1.0)
        l = np.tril(lower)
        u = np.triu(fact)
        order = np.arange(n)
        for k, piv in enumerate(pivots):
            base = k * r
            for c, p in enumerate(piv):
                p = int(p) + base
                c = c + base
                if p != c:
                    order[[c, p]] = order[[p, c]]
        return order, l, u

    def check(self, atol: float = 1e-8) -> bool:
        """Verify ``P·A = L·U`` against the original matrix."""
        order, l, u = self.factors()
        return bool(np.allclose(self.a0[order], l @ u, atol=atol, rtol=1e-6))
