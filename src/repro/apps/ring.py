"""Ring round-trip transfer — the communication-overhead experiment (Fig. 6).

The paper evaluates DPS's communication overhead by sending 100 MB along a
ring of 4 PCs, each machine forwarding blocks as soon as received, and
comparing the steady-state throughput of (a) raw socket transfers against
(b) the same payloads embedded in DPS data objects.

This module provides both sides:

- :func:`run_socket_ring` — blocks flow hop-by-hop straight through the
  network model (no DPS headers, no serialization CPU cost): the baseline.
- :func:`run_dps_ring` — the same traffic expressed as a DPS flow graph
  ``split >> forward >> forward >> ... >> merge`` with one collection per
  hop; tokens carry a :class:`~repro.serial.Buffer` payload and therefore
  pay the DPS control-structure header and per-message serialization CPU,
  which is exactly the overhead Figure 6 quantifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

import numpy as np

from ..cluster import Cluster, ClusterSpec
from ..core import (
    ConstantRoute,
    DpsThread,
    FlowControlPolicy,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    SplitOperation,
    ThreadCollection,
)
from ..runtime import SimEngine
from ..serial import Buffer, ComplexToken, SimpleToken
from ..simkernel import Simulator

__all__ = [
    "RingResult",
    "run_socket_ring",
    "run_dps_ring",
    "build_ring_graph",
]


@dataclass
class RingResult:
    """Outcome of one ring sweep point.

    ``throughput`` is the *steady-state* rate, measured over the last 80%
    of blocks so the pipeline-fill ramp does not bias large-block points
    (the paper reports steady-state throughput).
    """

    block_bytes: int
    total_bytes: int
    elapsed: float
    #: time when the first 20% of blocks had completed the round trip
    warm_time: float = 0.0
    #: bytes completed during that warm-up window
    warm_bytes: int = 0

    @property
    def throughput(self) -> float:
        """Per-node steady-state throughput in bytes/second."""
        window = self.elapsed - self.warm_time
        if window <= 0:
            return self.total_bytes / self.elapsed if self.elapsed else 0.0
        return (self.total_bytes - self.warm_bytes) / window

    @property
    def throughput_mb(self) -> float:
        return self.throughput / 1e6


# ---------------------------------------------------------------------------
# baseline: raw socket forwarding
# ---------------------------------------------------------------------------

def run_socket_ring(
    spec: ClusterSpec, block_bytes: int, total_bytes: int
) -> RingResult:
    """Forward blocks around the ring with bare network transfers."""
    if block_bytes <= 0 or total_bytes <= 0:
        raise ValueError("block and total sizes must be positive")
    sim = Simulator()
    cluster = Cluster(sim, spec)
    names = cluster.node_names
    if len(names) < 2:
        raise ValueError("the ring needs at least 2 nodes")
    nodes = [cluster.node(n) for n in names]
    n_blocks = math.ceil(total_bytes / block_bytes)
    remaining = [n_blocks]
    completions: List[float] = []

    def forward(block_id: int, hop: int) -> None:
        if hop == len(nodes):
            remaining[0] -= 1
            completions.append(sim.now)
            return
        # hop h moves the block from nodes[h] to nodes[(h+1) % len]
        ev = cluster.network.transfer(
            nodes[hop], nodes[(hop + 1) % len(nodes)], block_bytes
        )
        ev.add_callback(lambda _ev, b=block_id, h=hop: forward(b, h + 1))

    for block_id in range(n_blocks):
        forward(block_id, 0)
    elapsed = sim.run()
    if remaining[0] != 0:  # pragma: no cover - defensive
        raise RuntimeError("ring transfer did not drain")
    warm_count = max(1, n_blocks // 5)
    warm_time = completions[warm_count - 1] if n_blocks > 1 else 0.0
    warm_bytes = warm_count * block_bytes if n_blocks > 1 else 0
    return RingResult(block_bytes, n_blocks * block_bytes, elapsed,
                      warm_time, warm_bytes)


# ---------------------------------------------------------------------------
# DPS version
# ---------------------------------------------------------------------------

class RingBlockToken(ComplexToken):
    """A payload block travelling around the ring."""

    def __init__(self, data=None, seq: int = 0, n_blocks: int = 0):
        self.data = data if data is not None else Buffer([])
        self.seq = seq
        self.n_blocks = n_blocks


class RingJobToken(SimpleToken):
    """Describes the whole transfer: block size and count."""

    def __init__(self, block_bytes: int = 0, n_blocks: int = 0):
        self.block_bytes = block_bytes
        self.n_blocks = n_blocks


class RingDoneToken(SimpleToken):
    def __init__(self, blocks: int = 0, received_bytes: int = 0,
                 warm_time: float = 0.0, warm_blocks: int = 0,
                 last_time: float = 0.0):
        self.blocks = blocks
        self.received_bytes = received_bytes
        #: time when the warm-up fraction of blocks had arrived
        self.warm_time = warm_time
        self.warm_blocks = warm_blocks
        #: arrival time of the final block
        self.last_time = last_time


class RingThread(DpsThread):
    pass


class RingSource(SplitOperation):
    """Emit the block tokens (hop 0 of the ring)."""

    thread_type = RingThread
    in_types = (RingJobToken,)
    out_types = (RingBlockToken,)

    def execute(self, tok: RingJobToken):
        payload = np.zeros(tok.block_bytes, dtype=np.uint8)
        for seq in range(tok.n_blocks):
            self.post(RingBlockToken(Buffer(payload), seq, tok.n_blocks))


class RingForward(LeafOperation):
    """Forward the block to the next hop as soon as it arrives."""

    thread_type = RingThread
    in_types = (RingBlockToken,)
    out_types = (RingBlockToken,)

    def execute(self, tok: RingBlockToken):
        self.post(RingBlockToken(tok.data, tok.seq, tok.n_blocks))


class RingSink(MergeOperation):
    """Count blocks completing the round trip; record warm-up timing."""

    thread_type = RingThread
    in_types = (RingBlockToken,)
    out_types = (RingDoneToken,)

    def execute(self, tok: RingBlockToken):
        blocks = 0
        received = 0
        warm_count = max(1, tok.n_blocks // 5)
        warm_time = 0.0
        last = 0.0
        while tok is not None:
            blocks += 1
            received += tok.data.nbytes
            last = self.now()
            if blocks == warm_count:
                warm_time = last
            tok = yield self.next_token()
        yield self.post(RingDoneToken(blocks, received, warm_time,
                                      warm_count, last))


def build_ring_graph(node_names: List[str]) -> Flowgraph:
    """``split >> forward*(n-1) >> merge`` with one hop per ring node.

    The source and sink live on the first node; each forward hop on the
    next node, so every block crosses ``len(node_names)`` NICs — the same
    traffic pattern as the socket baseline.
    """
    if len(node_names) < 2:
        raise ValueError("the ring needs at least 2 nodes")
    head = ThreadCollection(RingThread, "ring-head").map(node_names[0])
    builder = FlowgraphNode(RingSource, head, ConstantRoute).as_builder()
    for i, name in enumerate(node_names[1:], start=1):
        hop = ThreadCollection(RingThread, f"ring-hop{i}").map(name)
        builder = builder >> FlowgraphNode(RingForward, hop, ConstantRoute)
    builder = builder >> FlowgraphNode(RingSink, head, ConstantRoute)
    return Flowgraph(builder, "ring")


def run_dps_ring(
    spec: ClusterSpec,
    block_bytes: int,
    total_bytes: int,
    window: int | None = 64,
    tracer=None,
) -> RingResult:
    """Run the DPS ring and measure round-trip throughput."""
    if block_bytes <= 0 or total_bytes <= 0:
        raise ValueError("block and total sizes must be positive")
    n_blocks = math.ceil(total_bytes / block_bytes)
    engine = SimEngine(
        spec,
        policy=FlowControlPolicy(window=window),
        # Payload bytes are zeros; sizes come from the Buffer directly.
        # CPU serialization costs are still charged (that's the overhead
        # under test); only the python-level byte copying is skipped.
        serialize_payloads=False,
        charge_serialization=True,
        tracer=tracer,
    )
    graph = build_ring_graph(spec.node_names)
    engine.register_graph(graph)
    engine.prelaunch()
    result = engine.run(graph, RingJobToken(block_bytes, n_blocks))
    done = result.token
    if done.blocks != n_blocks:  # pragma: no cover - defensive
        raise RuntimeError("DPS ring lost blocks")
    warm_time = done.warm_time - result.started_at if n_blocks > 1 else 0.0
    warm_bytes = done.warm_blocks * block_bytes if n_blocks > 1 else 0
    elapsed = done.last_time - result.started_at
    return RingResult(block_bytes, n_blocks * block_bytes, elapsed,
                      warm_time, warm_bytes)
