"""Video frame recomposition — the stream-operation showcase (Figure 4).

An uncompressed video stream is stored on a disk array as *partial
frames* which must be recomposed before processing:

(1) generate frame-part read requests; (2) read frame parts from the disk
array; (3) combine frame parts into complete frames and **stream them
out**; (4) process complete frames; (5) merge processed frames onto the
final stream.

The stream operation at (3) lets complete frames be processed as soon as
they are ready, without waiting until all partial frames have been read —
replacing it with a merge+split barrier (``use_stream=False``) delays the
whole processing stage until the last disk read finishes.

Disks are modelled by charging read time at a per-node disk bandwidth on
the storage threads (a striped file service in the paper's deployments).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core import (
    ConstantRoute,
    DpsThread,
    FlowControlPolicy,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    SplitOperation,
    StreamOperation,
    ThreadCollection,
    route_fn,
)
from ..runtime import SimEngine
from ..serial import Buffer, ComplexToken, SimpleToken

__all__ = ["VideoJob", "run_video_pipeline", "VideoRunStats"]

#: Sustained disk-array read bandwidth per storage node (2000-era SCSI).
DISK_BYTES_PER_SECOND = 30e6


class VideoJobToken(SimpleToken):
    """The request: *n_frames* frames of *frame_bytes*, striped over
    *n_parts* partial frames each."""

    def __init__(self, n_frames: int = 0, frame_bytes: int = 0, n_parts: int = 1):
        self.n_frames = n_frames
        self.frame_bytes = frame_bytes
        self.n_parts = n_parts


class VideoPartRequest(SimpleToken):
    def __init__(self, frame: int = 0, part: int = 0, nbytes: int = 0,
                 n_parts: int = 1):
        self.frame = frame
        self.part = part
        self.nbytes = nbytes
        self.n_parts = n_parts


class VideoPartToken(ComplexToken):
    def __init__(self, frame: int = 0, part: int = 0, data=None, n_parts: int = 1):
        self.frame = frame
        self.part = part
        self.data = Buffer(data if data is not None else [])
        self.n_parts = n_parts


class VideoFrameToken(ComplexToken):
    def __init__(self, frame: int = 0, data=None):
        self.frame = frame
        self.data = Buffer(data if data is not None else [])


class VideoStatsToken(SimpleToken):
    def __init__(self, frames: int = 0, checksum: int = 0,
                 first_frame_done: float = 0.0):
        self.frames = frames
        self.checksum = checksum
        self.first_frame_done = first_frame_done


class VideoMainThread(DpsThread):
    pass


class VideoDiskThread(DpsThread):
    pass


class VideoProcThread(DpsThread):
    pass


_ByPart = route_fn("VideoByPart", lambda tok, n: tok.part % n)
_ByFrame = route_fn("VideoByFrame", lambda tok, n: tok.frame % n)


class VideoSplitRequests(SplitOperation):
    """(1) generate frame-part read requests."""

    thread_type = VideoMainThread
    in_types = (VideoJobToken,)
    out_types = (VideoPartRequest,)

    def execute(self, tok: VideoJobToken):
        part_bytes = tok.frame_bytes // tok.n_parts
        for frame in range(tok.n_frames):
            for part in range(tok.n_parts):
                self.post(VideoPartRequest(frame, part, part_bytes,
                                           tok.n_parts))


class VideoReadPart(LeafOperation):
    """(2) read one frame part from the disk array."""

    thread_type = VideoDiskThread
    in_types = (VideoPartRequest,)
    out_types = (VideoPartToken,)

    def execute(self, tok: VideoPartRequest):
        yield self.charge_seconds(tok.nbytes / DISK_BYTES_PER_SECOND)
        data = np.full(tok.nbytes, tok.frame % 251, dtype=np.uint8)
        yield self.post(VideoPartToken(tok.frame, tok.part, data, tok.n_parts))


class VideoRecomposeStream(StreamOperation):
    """(3) combine parts into frames; stream each frame out when ready."""

    thread_type = VideoMainThread
    in_types = (VideoPartToken,)
    out_types = (VideoFrameToken,)

    def execute(self, tok: VideoPartToken):
        partial: dict = {}
        while tok is not None:
            parts = partial.setdefault(tok.frame, {})
            parts[tok.part] = tok.data.array
            if len(parts) == tok.n_parts:
                frame = np.concatenate([parts[i] for i in range(tok.n_parts)])
                del partial[tok.frame]
                yield self.post(VideoFrameToken(tok.frame, frame))
            tok = yield self.next_token()
        if partial:  # pragma: no cover - defensive
            raise RuntimeError(f"incomplete frames left: {sorted(partial)}")


class VideoRecomposeBarrier(MergeOperation):
    """Barrier variant of (3): wait for *all* parts first."""

    thread_type = VideoMainThread
    in_types = (VideoPartToken,)
    out_types = (VideoJobToken,)

    def execute(self, tok: VideoPartToken):
        partial: dict = {}
        n_parts = tok.n_parts
        nbytes = 0
        while tok is not None:
            partial.setdefault(tok.frame, {})[tok.part] = tok.data.array
            nbytes = len(tok.data.array)
            tok = yield self.next_token()
        # hand the assembled set to the re-split via a job descriptor;
        # frames are stashed on the thread (same node, same address space)
        self.thread.frames = {
            f: np.concatenate([parts[i] for i in range(n_parts)])
            for f, parts in partial.items()
        }
        yield self.post(VideoJobToken(len(partial), nbytes * n_parts, n_parts))


class VideoReSplit(SplitOperation):
    thread_type = VideoMainThread
    in_types = (VideoJobToken,)
    out_types = (VideoFrameToken,)

    def execute(self, tok: VideoJobToken):
        frames = self.thread.frames
        for f in sorted(frames):
            self.post(VideoFrameToken(f, frames[f]))
        self.thread.frames = {}


class VideoProcessFrame(LeafOperation):
    """(4) process a complete frame (filtering, slice extraction, ...)."""

    thread_type = VideoProcThread
    in_types = (VideoFrameToken,)
    out_types = (VideoFrameToken,)

    #: processing cost: ~20 ops per pixel on the era's CPUs
    def execute(self, tok: VideoFrameToken):
        data = tok.data.array
        yield self.charge_flops(20.0 * data.nbytes)
        processed = (data.astype(np.uint16) * 2 % 256).astype(np.uint8)
        yield self.post(VideoFrameToken(tok.frame, processed))


class VideoFinalMerge(MergeOperation):
    """(5) merge processed frames onto the final stream."""

    thread_type = VideoMainThread
    in_types = (VideoFrameToken,)
    out_types = (VideoStatsToken,)

    def execute(self, tok: VideoFrameToken):
        frames = 0
        checksum = 0
        first_done = 0.0
        while tok is not None:
            frames += 1
            if frames == 1:
                first_done = self.now()
            checksum = (checksum + int(tok.data.array.sum())) % (2**31)
            tok = yield self.next_token()
        yield self.post(VideoStatsToken(frames, checksum, first_done))


@dataclass
class VideoRunStats:
    frames: int
    checksum: int
    makespan: float
    #: virtual time until the first processed frame reached the merge
    first_frame_latency: float


@dataclass
class VideoJob:
    n_frames: int = 16
    frame_bytes: int = 1 << 20
    n_parts: int = 4


def run_video_pipeline(
    spec,
    job: VideoJob,
    disk_nodes: List[str],
    proc_nodes: List[str],
    main_node: Optional[str] = None,
    use_stream: bool = True,
    window: Optional[int] = None,
) -> VideoRunStats:
    """Run the Figure 4 pipeline; compare ``use_stream`` True/False."""
    engine = SimEngine(spec, policy=FlowControlPolicy(window=window),
                       serialize_payloads=False)
    main = ThreadCollection(VideoMainThread, "video-main").map(
        main_node or disk_nodes[0]
    )
    disks = ThreadCollection(VideoDiskThread, "video-disk").map_nodes(disk_nodes)
    procs = ThreadCollection(VideoProcThread, "video-proc").map_nodes(proc_nodes)

    split = FlowgraphNode(VideoSplitRequests, main)
    read = FlowgraphNode(VideoReadPart, disks, _ByPart)
    process = FlowgraphNode(VideoProcessFrame, procs, _ByFrame)
    final = FlowgraphNode(VideoFinalMerge, main)
    if use_stream:
        recompose = FlowgraphNode(VideoRecomposeStream, main)
        builder = split >> read >> recompose >> process >> final
        name = "video-stream"
    else:
        barrier = FlowgraphNode(VideoRecomposeBarrier, main)
        resplit = FlowgraphNode(VideoReSplit, main)
        builder = split >> read >> barrier >> resplit >> process >> final
        name = "video-barrier"
    graph = Flowgraph(builder, name)
    engine.register_graph(graph)
    engine.prelaunch()
    result = engine.run(
        graph, VideoJobToken(job.n_frames, job.frame_bytes, job.n_parts)
    )
    tok = result.token
    return VideoRunStats(
        frames=tok.frames,
        checksum=tok.checksum,
        makespan=result.makespan,
        first_frame_latency=tok.first_frame_done - result.started_at,
    )
