"""Parallel computation of radio listening rates (paper §1, ref. [21]).

One of the first-generation parallel-schedule applications: computing
radio listening rates from survey data — thousands of participants carry
watches that log the ambient-sound signature per minute; matching those
logs against the stations' broadcast signatures yields per-station,
per-time-slot listening rates.

The DPS structure is a classic farm with data-dependent task sizes:

- the survey (participant diaries) is partitioned into batches stored on
  the master;
- the split posts one batch per token; workers really match each diary
  minute against the station signatures (numpy correlation-style
  scoring), charging flops proportional to ``minutes × stations``;
- the merge accumulates the per-station × per-slot listening counts and
  posts the rate table.

Batches vary in size (participants log different amounts), so the
load-balanced route outperforms round-robin — this app doubles as the
showcase for feedback-driven routing on real (skewed) workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..cluster import ClusterSpec, costs
from ..core import (
    ConstantRoute,
    DpsThread,
    FlowControlPolicy,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    LoadBalancedRoute,
    MergeOperation,
    Route,
    SplitOperation,
    ThreadCollection,
)
from ..runtime import SimEngine
from ..serial import Buffer, ComplexToken, SimpleToken

__all__ = [
    "RadioSurvey",
    "generate_survey",
    "compute_listening_rates",
    "reference_rates",
    "RadioRun",
]

#: equivalent simple operations per (diary-minute, station) match
MATCH_FLOPS_PER_SAMPLE = 12.0


# ---------------------------------------------------------------------------
# synthetic survey data
# ---------------------------------------------------------------------------

@dataclass
class RadioSurvey:
    """A synthetic listening survey.

    ``diaries[i]`` is an ``(minutes_i, 2)`` int array: column 0 is the
    time slot, column 1 the station actually heard (or -1 for none);
    diaries have skewed lengths, as real participants do.
    """

    n_stations: int
    n_slots: int
    diaries: List[np.ndarray]

    @property
    def total_minutes(self) -> int:
        return sum(len(d) for d in self.diaries)


def generate_survey(
    n_participants: int = 200,
    n_stations: int = 8,
    n_slots: int = 24,
    seed: int = 0,
) -> RadioSurvey:
    """Generate a survey with realistically skewed diary lengths."""
    rng = np.random.default_rng(seed)
    diaries = []
    for _ in range(n_participants):
        # lognormal lengths: a few participants log far more than most
        minutes = max(4, int(rng.lognormal(mean=3.0, sigma=0.9)))
        slots = rng.integers(0, n_slots, size=minutes)
        stations = rng.integers(-1, n_stations, size=minutes)
        diaries.append(
            np.stack([slots, stations], axis=1).astype(np.int32)
        )
    return RadioSurvey(n_stations, n_slots, diaries)


def reference_rates(survey: RadioSurvey) -> np.ndarray:
    """Single-threaded reference: listening counts[station, slot]."""
    counts = np.zeros((survey.n_stations, survey.n_slots), dtype=np.int64)
    for diary in survey.diaries:
        heard = diary[diary[:, 1] >= 0]
        np.add.at(counts, (heard[:, 1], heard[:, 0]), 1)
    return counts


# ---------------------------------------------------------------------------
# tokens / threads / operations
# ---------------------------------------------------------------------------

class RadioJobToken(ComplexToken):
    def __init__(self, n_stations: int = 0, n_slots: int = 0,
                 batch_size: int = 20):
        self.n_stations = n_stations
        self.n_slots = n_slots
        self.batch_size = batch_size


class RadioBatchToken(ComplexToken):
    """One batch of diaries, flattened with participant offsets."""

    def __init__(self, batch_id: int = 0, data=None,
                 n_stations: int = 0, n_slots: int = 0):
        self.batch_id = batch_id
        self.data = Buffer(data if data is not None else
                           np.empty((0, 2), np.int32))
        self.n_stations = n_stations
        self.n_slots = n_slots


class RadioCountsToken(ComplexToken):
    def __init__(self, batch_id: int = 0, counts=None, minutes: int = 0):
        self.batch_id = batch_id
        self.counts = Buffer(counts if counts is not None else [])
        self.minutes = minutes


class RadioRatesToken(ComplexToken):
    def __init__(self, counts=None, total_minutes: int = 0):
        self.counts = Buffer(counts if counts is not None else [])
        self.total_minutes = total_minutes


class RadioMasterThread(DpsThread):
    """Holds the survey (it arrives out-of-core batch by batch)."""

    def __init__(self):
        self.survey: Optional[RadioSurvey] = None


class RadioWorkerThread(DpsThread):
    def __init__(self):
        self.matched_minutes = 0


class RadioSplit(SplitOperation):
    """Post diary batches; batch sizes follow the skewed diary lengths."""

    thread_type = RadioMasterThread
    in_types = (RadioJobToken,)
    out_types = (RadioBatchToken,)

    def execute(self, tok: RadioJobToken):
        survey = self.thread.survey
        if survey is None:
            raise RuntimeError("survey not loaded on the master thread")
        diaries = survey.diaries
        for batch_id, start in enumerate(range(0, len(diaries),
                                               tok.batch_size)):
            chunk = diaries[start:start + tok.batch_size]
            flat = np.concatenate(chunk) if chunk else \
                np.empty((0, 2), np.int32)
            self.post(RadioBatchToken(batch_id, flat,
                                      survey.n_stations, survey.n_slots))


class RadioMatch(LeafOperation):
    """Match a batch against the station signatures (really computed)."""

    thread_type = RadioWorkerThread
    in_types = (RadioBatchToken,)
    out_types = (RadioCountsToken,)

    def execute(self, tok: RadioBatchToken):
        data = tok.data.array
        counts = np.zeros((tok.n_stations, tok.n_slots), dtype=np.int64)
        heard = data[data[:, 1] >= 0]
        if len(heard):
            np.add.at(counts, (heard[:, 1], heard[:, 0]), 1)
        self.thread.matched_minutes += len(data)
        yield self.charge_flops(
            MATCH_FLOPS_PER_SAMPLE * len(data) * tok.n_stations
        )
        yield self.post(RadioCountsToken(tok.batch_id, counts, len(data)))


class RadioMerge(MergeOperation):
    """Accumulate the per-batch counts into the rate table."""

    thread_type = RadioMasterThread
    in_types = (RadioCountsToken,)
    out_types = (RadioRatesToken,)

    def execute(self, tok: RadioCountsToken):
        total = np.zeros_like(tok.counts.array)
        minutes = 0
        while tok is not None:
            total += tok.counts.array
            minutes += tok.minutes
            tok = yield self.next_token()
        yield self.post(RadioRatesToken(total, minutes))


class _RadioLoad(LeafOperation):
    """Install the survey into the master thread (load step)."""

    thread_type = RadioMasterThread
    in_types = (RadioJobToken,)
    out_types = (RadioJobToken,)

    survey: Optional[RadioSurvey] = None

    def execute(self, tok):
        self.thread.survey = self.survey
        self.post(tok)


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------

@dataclass
class RadioRun:
    counts: np.ndarray
    total_minutes: int
    makespan: float
    #: minutes matched per worker thread index (load-balance visibility)
    worker_minutes: List[int]

    def rates(self) -> np.ndarray:
        """Listening rate: fraction of logged minutes per station/slot."""
        if self.total_minutes == 0:
            return self.counts.astype(float)
        return self.counts / float(self.total_minutes)


_radio_uid = [0]


def compute_listening_rates(
    spec: ClusterSpec,
    survey: RadioSurvey,
    n_workers: int,
    batch_size: int = 20,
    route_class: type[Route] = LoadBalancedRoute,
    window: Optional[int] = None,
) -> RadioRun:
    """Compute the survey's listening rates on the simulated cluster."""
    if n_workers < 1 or n_workers > len(spec.node_names) - 1:
        raise ValueError(
            f"need 1..{len(spec.node_names) - 1} workers on a "
            f"{len(spec.node_names)}-node cluster"
        )
    _radio_uid[0] += 1
    uid = _radio_uid[0]
    master_node = spec.node_names[0]
    worker_nodes = spec.node_names[1:n_workers + 1]
    engine = SimEngine(
        spec,
        policy=FlowControlPolicy(window=window if window else 2 * n_workers),
        serialize_payloads=False,
    )
    master = ThreadCollection(RadioMasterThread, f"radio{uid}-m").map(master_node)
    workers = ThreadCollection(RadioWorkerThread, f"radio{uid}-w").map_nodes(
        worker_nodes
    )
    load_cls = type(f"RadioLoad_{uid}", (_RadioLoad,), {"survey": survey})
    graph = Flowgraph(
        FlowgraphNode(load_cls, master, ConstantRoute)
        >> FlowgraphNode(RadioSplit, master, ConstantRoute)
        >> FlowgraphNode(RadioMatch, workers, route_class)
        >> FlowgraphNode(RadioMerge, master, ConstantRoute),
        f"radio{uid}.rates",
    )
    engine.register_graph(graph)
    engine.prelaunch()
    result = engine.run(
        graph,
        RadioJobToken(survey.n_stations, survey.n_slots, batch_size),
        driver_node=master_node,
    )
    worker_minutes = []
    for index in range(workers.thread_count):
        controller = engine.controllers[workers.node_of(index)]
        ts = controller._threads.get((id(workers), index))
        worker_minutes.append(ts.thread.matched_minutes if ts else 0)
    return RadioRun(
        counts=result.token.counts.array,
        total_minutes=result.token.total_minutes,
        makespan=result.makespan,
        worker_minutes=worker_minutes,
    )
