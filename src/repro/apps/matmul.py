"""Block matrix multiplication — the overlap experiment (Table 1).

The paper multiplies two ``n×n`` matrices by splitting them into ``s×s``
blocks: communication is proportional to ``n²·(2s+1)`` (each of the ``s²``
result blocks needs ``s`` blocks of A and ``s`` of B shipped to a worker,
plus the result back) while computation is proportional to ``n³``.
Varying ``s`` at fixed ``n`` sweeps the communication/computation ratio,
and the implicit overlap of DPS pipelining yields the execution-time
reductions of Table 1.

The master thread holds A and B; the split posts one
:class:`MatMulTaskToken` per result block (the ``s`` A-blocks of its row
and ``s`` B-blocks of its column), workers really compute
``C_ij = Σ_k A_ik · B_kj`` with numpy while charging the equivalent
733 MHz-era flop cost, and the merge reassembles C.

Overlap is controlled by the flow-control window: a window of one task
per worker (``window = workers``) degenerates to the non-overlapped
send→compute→return lock-step, a wide window enables full pipelining.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..cluster import ClusterSpec, costs
from ..core import (
    ConstantRoute,
    DpsThread,
    FlowControlPolicy,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    SplitOperation,
    ThreadCollection,
    route_fn,
)
from ..runtime import SimEngine
from ..serial import Buffer, ComplexToken, SimpleToken

__all__ = [
    "MatMulJobToken",
    "MatMulTaskToken",
    "MatMulResultToken",
    "MatMulDoneToken",
    "build_matmul_graph",
    "block_multiply",
    "MatMulRun",
]


class MatMulJobToken(ComplexToken):
    """The whole job: both operand matrices and the splitting factor."""

    def __init__(self, a=None, b=None, s: int = 1):
        self.a = Buffer(a if a is not None else [])
        self.b = Buffer(b if b is not None else [])
        self.s = s


class MatMulTaskToken(ComplexToken):
    """One result block's work: row-of-A and column-of-B blocks."""

    def __init__(self, i: int = 0, j: int = 0, a_row=None, b_col=None):
        self.i = i
        self.j = j
        #: s blocks of A stacked along axis 0: shape (s, nb, nb)
        self.a_row = Buffer(a_row if a_row is not None else [])
        #: s blocks of B stacked along axis 0: shape (s, nb, nb)
        self.b_col = Buffer(b_col if b_col is not None else [])


class MatMulResultToken(ComplexToken):
    def __init__(self, i: int = 0, j: int = 0, block=None):
        self.i = i
        self.j = j
        self.block = Buffer(block if block is not None else [])


class MatMulDoneToken(ComplexToken):
    def __init__(self, c=None):
        self.c = Buffer(c if c is not None else [])


class MatMulMasterThread(DpsThread):
    pass


class MatMulWorkerThread(DpsThread):
    pass


class SplitBlocks(SplitOperation):
    """Post one task per result block, row-major (i, j) order."""

    thread_type = MatMulMasterThread
    in_types = (MatMulJobToken,)
    out_types = (MatMulTaskToken,)

    def execute(self, tok: MatMulJobToken):
        a, b, s = tok.a.array, tok.b.array, tok.s
        n = a.shape[0]
        if a.shape != (n, n) or b.shape != (n, n):
            raise ValueError("operands must be square and equally sized")
        if n % s:
            raise ValueError(f"matrix size {n} not divisible by s={s}")
        nb = n // s
        # Pre-slice into an (s, s, nb, nb) block view for cheap indexing.
        blocks_a = a.reshape(s, nb, s, nb).swapaxes(1, 2)
        blocks_b = b.reshape(s, nb, s, nb).swapaxes(1, 2)
        for i in range(s):
            a_row = np.ascontiguousarray(blocks_a[i, :])  # (s, nb, nb)
            for j in range(s):
                b_col = np.ascontiguousarray(blocks_b[:, j])  # (s, nb, nb)
                self.post(MatMulTaskToken(i, j, a_row, b_col))


class MultiplyBlocks(LeafOperation):
    """Really compute ``C_ij = Σ_k A_ik · B_kj`` and charge its flops."""

    thread_type = MatMulWorkerThread
    in_types = (MatMulTaskToken,)
    out_types = (MatMulResultToken,)

    def execute(self, tok: MatMulTaskToken):
        a_row = tok.a_row.array
        b_col = tok.b_col.array
        s, nb, _ = a_row.shape
        block = np.zeros((nb, nb), dtype=a_row.dtype)
        for k in range(s):
            block += a_row[k] @ b_col[k]
        yield self.charge_flops(costs.matmul_flops(nb, nb, nb) * s)
        yield self.post(MatMulResultToken(tok.i, tok.j, block))


class MergeBlocks(MergeOperation):
    """Reassemble C from result blocks."""

    thread_type = MatMulMasterThread
    in_types = (MatMulResultToken,)
    out_types = (MatMulDoneToken,)

    def execute(self, tok: MatMulResultToken):
        pieces = {}
        nb = tok.block.shape[0]
        while tok is not None:
            pieces[(tok.i, tok.j)] = tok.block.array
            tok = yield self.next_token()
        s = int(np.sqrt(len(pieces)))
        n = s * nb
        c = np.empty((n, n), dtype=next(iter(pieces.values())).dtype)
        for (i, j), block in pieces.items():
            c[i * nb : (i + 1) * nb, j * nb : (j + 1) * nb] = block
        yield self.post(MatMulDoneToken(c))


#: Tasks are dealt round-robin over workers by result-block index.
TaskRoute = route_fn("TaskRoute", lambda tok, n: (tok.i + tok.j * 7919) % n)


def build_matmul_graph(
    master_node: str, worker_nodes: list[str], name: str = "matmul"
) -> Flowgraph:
    """split(master) >> multiply(workers) >> merge(master)."""
    master = ThreadCollection(MatMulMasterThread, "mm-master").map(master_node)
    workers = ThreadCollection(MatMulWorkerThread, "mm-workers").map_nodes(
        worker_nodes
    )
    builder = (
        FlowgraphNode(SplitBlocks, master, ConstantRoute)
        >> FlowgraphNode(MultiplyBlocks, workers, TaskRoute)
        >> FlowgraphNode(MergeBlocks, master, ConstantRoute)
    )
    return Flowgraph(builder, name)


@dataclass
class MatMulRun:
    """Result of one simulated block multiplication."""

    c: np.ndarray
    makespan: float
    comm_bytes: int
    comm_messages: int

    def check(self, a: np.ndarray, b: np.ndarray, tol: float = 1e-9) -> bool:
        return bool(np.allclose(self.c, a @ b, atol=tol, rtol=1e-7))


def block_multiply(
    spec: ClusterSpec,
    a: np.ndarray,
    b: np.ndarray,
    s: int,
    n_workers: Optional[int] = None,
    window: Optional[int] = None,
    master_node: Optional[str] = None,
    tracer=None,
) -> MatMulRun:
    """Multiply ``a @ b`` on the simulated cluster.

    The master lives on the first cluster node, workers on the next
    ``n_workers`` nodes (the paper runs the master apart from the 1–4
    compute nodes).  ``window`` is the flow-control window; ``None`` uses
    3 tasks per worker (full overlap).
    """
    names = spec.node_names
    n_workers = n_workers if n_workers is not None else len(names) - 1
    if n_workers < 1 or n_workers > len(names) - 1:
        raise ValueError(
            f"need 1..{len(names) - 1} workers on a {len(names)}-node cluster"
        )
    master = master_node or names[0]
    workers = [n for n in names if n != master][:n_workers]
    window = window if window is not None else 3 * n_workers
    engine = SimEngine(
        spec,
        policy=FlowControlPolicy(window=window),
        serialize_payloads=False,  # wire sizes from Buffer nbytes
        charge_serialization=True,
        tracer=tracer,
    )
    graph = build_matmul_graph(master, workers)
    engine.register_graph(graph)
    engine.prelaunch()
    result = engine.run(graph, MatMulJobToken(a, b, s), driver_node=master)
    metrics = engine.stats()
    return MatMulRun(
        c=result.token.c.array,
        makespan=result.makespan,
        comm_bytes=metrics["network_bytes"],
        comm_messages=metrics["network_messages"],
    )
