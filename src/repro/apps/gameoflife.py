"""Distributed Game of Life — the iterative stencil application (Fig. 7–9).

The world is distributed as horizontal bands over worker threads (one per
node).  Each iteration needs the border lines of neighbouring bands.  Two
flow graphs implement one iteration:

- **standard** (paper Figure 7): exchange borders, global synchronization,
  then compute the whole band;
- **improved** (paper Figure 8): border exchange runs in parallel with the
  computation of the band's center, which needs no remote data; only the
  two border lines wait for the ghosts.

Each worker node hosts two DPS threads, mirroring the paper's bi-processor
machines: an *exchange* thread owning the band (serving border requests,
collecting ghosts) and a *compute* thread executing the heavy stencil
updates.  Band references travel between them in tokens — a zero-copy
pointer pass on the same node, exactly the paper's local-communication
shortcut (§4).

The stencil is really computed (vectorized numpy, dead borders); virtual
CPU time is charged via :func:`repro.cluster.costs.gol_band_flops`.
"""

from __future__ import annotations

import itertools
import time
from typing import List, Optional

import numpy as np

from ..cluster import costs
from ..core import (
    ConstantRoute,
    DpsThread,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    SplitOperation,
    ThreadCollection,
    route_fn,
)
from ..runtime import RunResult, coerce_run_result
from ..serial import Buffer, ComplexToken, SimpleToken

__all__ = ["life_step", "DistributedGameOfLife"]

_instance_counter = itertools.count(1)


# ---------------------------------------------------------------------------
# reference stencil
# ---------------------------------------------------------------------------

def _neighbor_counts(ext: np.ndarray) -> np.ndarray:
    """8-neighbour counts for the interior of a zero-padded array."""
    return (
        ext[:-2, :-2] + ext[:-2, 1:-1] + ext[:-2, 2:]
        + ext[1:-1, :-2] + ext[1:-1, 2:]
        + ext[2:, :-2] + ext[2:, 1:-1] + ext[2:, 2:]
    )


def life_step(world: np.ndarray) -> np.ndarray:
    """One Game of Life step with dead (non-periodic) borders."""
    world = np.asarray(world, dtype=np.uint8)
    ext = np.pad(world, 1)
    n = _neighbor_counts(ext)
    return ((n == 3) | ((world == 1) & (n == 2))).astype(np.uint8)


def _step_band(band: np.ndarray, top: np.ndarray, bottom: np.ndarray) -> np.ndarray:
    """Step a whole band given its ghost rows."""
    ext = np.zeros((band.shape[0] + 2, band.shape[1] + 2), dtype=np.uint8)
    ext[1:-1, 1:-1] = band
    ext[0, 1:-1] = top
    ext[-1, 1:-1] = bottom
    n = _neighbor_counts(ext)
    return ((n == 3) | ((band == 1) & (n == 2))).astype(np.uint8)


# ---------------------------------------------------------------------------
# tokens
# ---------------------------------------------------------------------------

class GolWorldToken(ComplexToken):
    """The whole world (load-graph input and gather-graph output)."""

    def __init__(self, world=None):
        self.world = Buffer(world if world is not None else [])


class GolBandToken(ComplexToken):
    """One worker's band during loading."""

    def __init__(self, worker: int = 0, band=None, row_start: int = 0):
        self.worker = worker
        self.band = Buffer(band if band is not None else [])
        self.row_start = row_start


class GolAckToken(SimpleToken):
    def __init__(self, worker: int = 0):
        self.worker = worker


class GolSyncToken(SimpleToken):
    def __init__(self, count: int = 0):
        self.count = count


class GolIterToken(SimpleToken):
    """Iteration-graph input / phase hand-over."""

    def __init__(self, iteration: int = 0):
        self.iteration = iteration


class GolExchangeCmd(SimpleToken):
    def __init__(self, worker: int = 0):
        self.worker = worker


class GolComputeCmd(SimpleToken):
    def __init__(self, worker: int = 0):
        self.worker = worker


class GolBorderRequest(SimpleToken):
    """Ask *neighbor* for the border row adjacent to *requester*.

    ``direction`` is +1 (requesting the row below my band) or -1 (above);
    0 marks the no-op self request used by edge workers so every group
    has the same cardinality.
    """

    def __init__(self, requester: int = 0, neighbor: int = 0, direction: int = 0):
        self.requester = requester
        self.neighbor = neighbor
        self.direction = direction


class GolBorderData(ComplexToken):
    def __init__(self, worker: int = 0, direction: int = 0, row=None):
        self.worker = worker
        self.direction = direction
        self.row = Buffer(row if row is not None else [])


class GolCenterCmd(ComplexToken):
    """Compute-center order; carries a reference to the band (zero-copy
    pointer pass between the two threads of one node)."""

    def __init__(self, worker: int = 0, band=None):
        self.worker = worker
        self.band = Buffer(band if band is not None else [])


class GolCenterDone(ComplexToken):
    def __init__(self, worker: int = 0, interior=None):
        self.worker = worker
        self.interior = Buffer(interior if interior is not None else [])


class GolBandWork(ComplexToken):
    """Whole-band compute order (standard graph), ghosts attached."""

    def __init__(self, worker: int = 0, band=None, top=None, bottom=None):
        self.worker = worker
        self.band = Buffer(band if band is not None else [])
        self.top = Buffer(top if top is not None else [])
        self.bottom = Buffer(bottom if bottom is not None else [])


class GolBandResult(ComplexToken):
    def __init__(self, worker: int = 0, band=None):
        self.worker = worker
        self.band = Buffer(band if band is not None else [])


class GolGatherCmd(SimpleToken):
    def __init__(self, worker: int = 0):
        self.worker = worker


class GolBandPart(ComplexToken):
    def __init__(self, worker: int = 0, band=None, row_start: int = 0):
        self.worker = worker
        self.band = Buffer(band if band is not None else [])
        self.row_start = row_start


class GolDoneToken(SimpleToken):
    def __init__(self, iteration: int = 0):
        self.iteration = iteration


# ---------------------------------------------------------------------------
# threads
# ---------------------------------------------------------------------------

class GolMasterThread(DpsThread):
    pass


class GolExchangeThread(DpsThread):
    """Owns the band (the distributed data structure)."""

    def __init__(self):
        self.band: Optional[np.ndarray] = None
        self.row_start = 0
        self.ghost_top: Optional[np.ndarray] = None
        self.ghost_bottom: Optional[np.ndarray] = None


class GolComputeThread(DpsThread):
    """Executes the heavy stencil updates."""


# routes by embedded worker index
_ByWorker = route_fn("GolByWorker", lambda tok, n: tok.worker % n)
_ByNeighbor = route_fn("GolByNeighbor", lambda tok, n: tok.neighbor % n)


# ---------------------------------------------------------------------------
# load / gather operations
# ---------------------------------------------------------------------------

class GolLoadSplit(SplitOperation):
    thread_type = GolMasterThread
    in_types = (GolWorldToken,)
    out_types = (GolBandToken,)

    n_workers = 1  # overridden per-instance via a class factory

    def execute(self, tok: GolWorldToken):
        world = tok.world.array
        rows = world.shape[0]
        w = self.n_workers
        bounds = np.linspace(0, rows, w + 1).astype(int)
        for i in range(w):
            band = np.ascontiguousarray(world[bounds[i]:bounds[i + 1]])
            self.post(GolBandToken(i, band, int(bounds[i])))


class GolLoadBand(LeafOperation):
    thread_type = GolExchangeThread
    in_types = (GolBandToken,)
    out_types = (GolAckToken,)

    def execute(self, tok: GolBandToken):
        t = self.thread
        t.band = tok.band.array.copy()
        t.row_start = tok.row_start
        t.ghost_top = np.zeros(t.band.shape[1], dtype=np.uint8)
        t.ghost_bottom = np.zeros(t.band.shape[1], dtype=np.uint8)
        self.post(GolAckToken(tok.worker))


class GolSyncMerge(MergeOperation):
    thread_type = GolMasterThread
    in_types = (GolAckToken,)
    out_types = (GolSyncToken,)

    def execute(self, tok: GolAckToken):
        count = 0
        while tok is not None:
            count += 1
            tok = yield self.next_token()
        yield self.post(GolSyncToken(count))


class GolGatherSplit(SplitOperation):
    thread_type = GolMasterThread
    in_types = (GolIterToken,)
    out_types = (GolGatherCmd,)

    n_workers = 1

    def execute(self, tok):
        for i in range(self.n_workers):
            self.post(GolGatherCmd(i))


class GolReadBand(LeafOperation):
    thread_type = GolExchangeThread
    in_types = (GolGatherCmd,)
    out_types = (GolBandPart,)

    def execute(self, tok: GolGatherCmd):
        t = self.thread
        self.post(GolBandPart(tok.worker, t.band.copy(), t.row_start))


class GolGatherMerge(MergeOperation):
    thread_type = GolMasterThread
    in_types = (GolBandPart,)
    out_types = (GolWorldToken,)

    def execute(self, tok: GolBandPart):
        parts = []
        while tok is not None:
            parts.append((tok.row_start, tok.band.array))
            tok = yield self.next_token()
        parts.sort(key=lambda p: p[0])
        yield self.post(GolWorldToken(np.vstack([p[1] for p in parts])))


# ---------------------------------------------------------------------------
# shared iteration operations
# ---------------------------------------------------------------------------

class GolSendBorder(LeafOperation):
    """(3) the neighbour sends the requested border row."""

    thread_type = GolExchangeThread
    in_types = (GolBorderRequest,)
    out_types = (GolBorderData,)

    def execute(self, tok: GolBorderRequest):
        t = self.thread
        if tok.direction == 0:  # edge-worker no-op request
            self.post(GolBorderData(tok.requester, 0, np.zeros(0, np.uint8)))
            return
        # direction +1: requester is above us and wants our first row;
        # direction -1: requester is below us and wants our last row.
        row = t.band[0] if tok.direction == +1 else t.band[-1]
        self.post(GolBorderData(tok.requester, tok.direction, row.copy()))


def _post_border_requests(op, worker: int, n_workers: int) -> None:
    """(2) split border transfer requests to the neighbouring nodes.

    Edge workers post no-op self requests so that every exchange group
    contains exactly two border replies.
    """
    if worker + 1 < n_workers:
        op.post(GolBorderRequest(worker, worker + 1, +1))
    else:
        op.post(GolBorderRequest(worker, worker, 0))
    if worker - 1 >= 0:
        op.post(GolBorderRequest(worker, worker - 1, -1))
    else:
        op.post(GolBorderRequest(worker, worker, 0))


def _store_ghost(thread: GolExchangeThread, tok: GolBorderData) -> None:
    if tok.direction == +1:
        thread.ghost_bottom = tok.row.array
    elif tok.direction == -1:
        thread.ghost_top = tok.row.array


# ---------------------------------------------------------------------------
# standard graph (Figure 7)
# ---------------------------------------------------------------------------

class GolStdIterSplit(SplitOperation):
    """(1) split to worker nodes."""

    thread_type = GolMasterThread
    in_types = (GolIterToken,)
    out_types = (GolExchangeCmd,)

    n_workers = 1

    def execute(self, tok):
        for i in range(self.n_workers):
            self.post(GolExchangeCmd(i))


class GolStdExchange(SplitOperation):
    """(2) each worker requests its borders."""

    thread_type = GolExchangeThread
    in_types = (GolExchangeCmd,)
    out_types = (GolBorderRequest,)

    n_workers = 1

    def execute(self, tok: GolExchangeCmd):
        _post_border_requests(self, tok.worker, self.n_workers)


class GolStdCollect(MergeOperation):
    """(4) collect borders into ghost rows."""

    thread_type = GolExchangeThread
    in_types = (GolBorderData,)
    out_types = (GolAckToken,)

    def execute(self, tok: GolBorderData):
        me = self.thread
        while tok is not None:
            _store_ghost(me, tok)
            tok = yield self.next_token()
        yield self.post(GolAckToken(me.index))


class GolStdComputeSplit(SplitOperation):
    """(6) split computation requests after the global synchronization."""

    thread_type = GolMasterThread
    in_types = (GolSyncToken,)
    out_types = (GolComputeCmd,)

    n_workers = 1

    def execute(self, tok):
        for i in range(self.n_workers):
            self.post(GolComputeCmd(i))


class GolPrepareCompute(LeafOperation):
    """Attach band and ghost references for the compute thread."""

    thread_type = GolExchangeThread
    in_types = (GolComputeCmd,)
    out_types = (GolBandWork,)

    def execute(self, tok: GolComputeCmd):
        t = self.thread
        self.post(GolBandWork(tok.worker, t.band, t.ghost_top, t.ghost_bottom))


class GolComputeBand(LeafOperation):
    """(7) compute the next state of the whole band."""

    thread_type = GolComputeThread
    in_types = (GolBandWork,)
    out_types = (GolBandResult,)

    def execute(self, tok: GolBandWork):
        band = tok.band.array
        new = _step_band(band, tok.top.array, tok.bottom.array)
        yield self.charge_flops(costs.gol_band_flops(band.shape[1], band.shape[0]))
        yield self.post(GolBandResult(tok.worker, new))


class GolCommitBand(LeafOperation):
    """Store the new band back into the exchange thread."""

    thread_type = GolExchangeThread
    in_types = (GolBandResult,)
    out_types = (GolAckToken,)

    def execute(self, tok: GolBandResult):
        self.thread.band = tok.band.array
        self.post(GolAckToken(tok.worker))


class GolIterDoneMerge(MergeOperation):
    """(8) synchronize the end of the iteration."""

    thread_type = GolMasterThread
    in_types = (GolAckToken,)
    out_types = (GolDoneToken,)

    def execute(self, tok):
        while tok is not None:
            tok = yield self.next_token()
        yield self.post(GolDoneToken())


# ---------------------------------------------------------------------------
# improved graph (Figure 8)
# ---------------------------------------------------------------------------

class GolImpExchange(SplitOperation):
    """(2) request borders AND immediately order the center compute."""

    thread_type = GolExchangeThread
    in_types = (GolExchangeCmd,)
    out_types = (GolBorderRequest, GolCenterCmd)

    n_workers = 1

    def execute(self, tok: GolExchangeCmd):
        _post_border_requests(self, tok.worker, self.n_workers)
        self.post(GolCenterCmd(tok.worker, self.thread.band))


class GolComputeCenter(LeafOperation):
    """(6) compute the band's center, which needs no remote data."""

    thread_type = GolComputeThread
    in_types = (GolCenterCmd,)
    out_types = (GolCenterDone,)

    def execute(self, tok: GolCenterCmd):
        band = tok.band.array
        if band.shape[0] > 2:
            # interior rows 1..r-2 depend only on band rows 0..r-1
            interior = _step_band(band[1:-1], band[0], band[-1])
        else:
            interior = np.zeros((0, band.shape[1]), dtype=np.uint8)
        rows = max(band.shape[0] - 2, 0)
        yield self.charge_flops(costs.gol_band_flops(band.shape[1], rows))
        yield self.post(GolCenterDone(tok.worker, interior))


class GolImpCollect(MergeOperation):
    """(4,5) collect borders and the finished center; compute the two
    border rows and commit the new band."""

    thread_type = GolExchangeThread
    in_types = (GolBorderData, GolCenterDone)
    out_types = (GolAckToken,)

    def execute(self, tok):
        me = self.thread
        interior = None
        while tok is not None:
            if isinstance(tok, GolBorderData):
                _store_ghost(me, tok)
            else:
                interior = tok.interior.array
            tok = yield self.next_token()
        band = me.band
        rows, cols = band.shape
        yield self.charge_flops(costs.gol_band_flops(cols, min(2, rows)))
        new = np.empty_like(band)
        if rows > 2:
            new[1:-1] = interior
            top_ext = np.vstack([me.ghost_top, band[0], band[1]])
            new[0] = _step_band(top_ext[1:2], top_ext[0], top_ext[2])[0]
            bot_ext = np.vstack([band[-2], band[-1], me.ghost_bottom])
            new[-1] = _step_band(bot_ext[1:2], bot_ext[0], bot_ext[2])[0]
        else:
            new[:] = _step_band(band, me.ghost_top, me.ghost_bottom)
        me.band = new
        yield self.post(GolAckToken(me.index))


# ---------------------------------------------------------------------------
# the application wrapper
# ---------------------------------------------------------------------------

class DistributedGameOfLife:
    """A running distributed Game of Life.

    Builds the load, gather and per-iteration graphs over *worker_nodes*
    (one band per node) with the master on *master_node* (default: the
    first worker node, as in the paper's single-cluster runs).
    *compute_nodes* optionally maps the stateless compute threads onto
    different nodes — one name shared by all workers or one per worker
    (default: co-located with each band's exchange thread).

    *engine* may be any of the three engines — the simulated cluster
    (virtual timing), the threaded engine or the multiprocess engine
    (wall-clock timing); the graphs are identical.
    """

    def __init__(
        self,
        engine,
        world: np.ndarray,
        worker_nodes: List[str],
        master_node: Optional[str] = None,
        compute_nodes: Optional[List[str]] = None,
    ):
        world = np.asarray(world, dtype=np.uint8)
        if world.ndim != 2:
            raise ValueError("world must be 2-D")
        if not worker_nodes:
            raise ValueError("need at least one worker node")
        if world.shape[0] < 2 * len(worker_nodes):
            raise ValueError(
                f"world of {world.shape[0]} rows is too small for "
                f"{len(worker_nodes)} bands (need >= 2 rows per band)"
            )
        self.engine = engine
        self.world0 = world
        self.n_workers = len(worker_nodes)
        self.iteration = 0
        uid = next(_instance_counter)
        self._master = ThreadCollection(GolMasterThread, f"gol{uid}-master").map(
            master_node or worker_nodes[0]
        )
        self._exchange = ThreadCollection(
            GolExchangeThread, f"gol{uid}-x"
        ).map_nodes(worker_nodes)
        # The compute threads are stateless workers; by default they sit
        # next to their band's exchange thread (the paper's bi-processor
        # nodes), but they may be mapped anywhere — e.g. onto a dedicated
        # kernel whose failure is recoverable, since losing a compute
        # thread loses no application state.
        if compute_nodes is not None:
            if len(compute_nodes) not in (1, len(worker_nodes)):
                raise ValueError(
                    f"compute_nodes must name 1 node or one per worker "
                    f"({len(worker_nodes)}), got {len(compute_nodes)}")
            if len(compute_nodes) == 1:
                compute_nodes = compute_nodes * len(worker_nodes)
        self._compute = ThreadCollection(
            GolComputeThread, f"gol{uid}-c"
        ).map_nodes(compute_nodes if compute_nodes is not None
                    else worker_nodes)

        w = self.n_workers
        # per-instance op subclasses carrying the worker count
        self._ops = {
            cls.__name__: type(f"{cls.__name__}_{uid}", (cls,), {"n_workers": w})
            for cls in (GolLoadSplit, GolGatherSplit, GolStdIterSplit,
                        GolStdExchange, GolStdComputeSplit, GolImpExchange)
        }
        self.load_graph = self._build_load(uid)
        self.gather_graph = self._build_gather(uid)
        self.standard_graph = self._build_standard(uid)
        self.improved_graph = self._build_improved(uid)
        for g in (self.load_graph, self.gather_graph,
                  self.standard_graph, self.improved_graph):
            engine.register_graph(g, app_name=f"gol{uid}")
        self._loaded = False

    # -- graph builders ----------------------------------------------------
    def _build_load(self, uid: int) -> Flowgraph:
        b = (
            FlowgraphNode(self._ops["GolLoadSplit"], self._master)
            >> FlowgraphNode(GolLoadBand, self._exchange, _ByWorker)
            >> FlowgraphNode(GolSyncMerge, self._master)
        )
        return Flowgraph(b, f"gol{uid}.load")

    def _build_gather(self, uid: int) -> Flowgraph:
        b = (
            FlowgraphNode(self._ops["GolGatherSplit"], self._master)
            >> FlowgraphNode(GolReadBand, self._exchange, _ByWorker)
            >> FlowgraphNode(GolGatherMerge, self._master)
        )
        return Flowgraph(b, f"gol{uid}.gather")

    def _build_standard(self, uid: int) -> Flowgraph:
        split1 = FlowgraphNode(self._ops["GolStdIterSplit"], self._master)
        exch = FlowgraphNode(self._ops["GolStdExchange"], self._exchange, _ByWorker)
        send = FlowgraphNode(GolSendBorder, self._exchange, _ByNeighbor)
        collect = FlowgraphNode(GolStdCollect, self._exchange, _ByWorker)
        sync = FlowgraphNode(GolSyncMerge, self._master)
        csplit = FlowgraphNode(self._ops["GolStdComputeSplit"], self._master)
        prep = FlowgraphNode(GolPrepareCompute, self._exchange, _ByWorker)
        compute = FlowgraphNode(GolComputeBand, self._compute, _ByWorker)
        commit = FlowgraphNode(GolCommitBand, self._exchange, _ByWorker)
        done = FlowgraphNode(GolIterDoneMerge, self._master)
        b = (split1 >> exch >> send >> collect >> sync
             >> csplit >> prep >> compute >> commit >> done)
        return Flowgraph(b, f"gol{uid}.standard")

    def _build_improved(self, uid: int) -> Flowgraph:
        split1 = FlowgraphNode(self._ops["GolStdIterSplit"], self._master)
        exch = FlowgraphNode(self._ops["GolImpExchange"], self._exchange, _ByWorker)
        send = FlowgraphNode(GolSendBorder, self._exchange, _ByNeighbor)
        center = FlowgraphNode(GolComputeCenter, self._compute, _ByWorker)
        collect = FlowgraphNode(GolImpCollect, self._exchange, _ByWorker)
        done = FlowgraphNode(GolIterDoneMerge, self._master)
        builder = split1 >> exch >> send >> collect
        builder += exch >> center >> collect
        builder += collect >> done
        return Flowgraph(builder, f"gol{uid}.improved")

    def _run(self, graph: Flowgraph, token) -> RunResult:
        """Engine-agnostic run: normalize the outcome to a RunResult."""
        started = time.monotonic()
        outcome = self.engine.run(graph, token)
        return coerce_run_result(outcome, started, time.monotonic())

    # -- public API ----------------------------------------------------------
    def load(self) -> RunResult:
        """Distribute the initial world to the workers."""
        result = self._run(self.load_graph, GolWorldToken(self.world0))
        self._loaded = True
        return result

    def step(self, improved: bool = True) -> RunResult:
        """Run one iteration; returns its RunResult (virtual or wall time)."""
        if not self._loaded:
            raise RuntimeError("call load() before step()")
        graph = self.improved_graph if improved else self.standard_graph
        self.iteration += 1
        return self._run(graph, GolIterToken(self.iteration))

    def gather(self) -> np.ndarray:
        """Collect the current world back to the master."""
        if not self._loaded:
            raise RuntimeError("call load() before gather()")
        result = self._run(self.gather_graph, GolIterToken(self.iteration))
        return result.token.world.array
