"""Applications from the paper and its lineage: tutorial strings, ring
transfer, block matmul, Game of Life (+ parallel service), block LU
factorization, video pipeline, 3-D volume slice server, radio
listening rates."""

from . import (
    gameoflife,
    gol_service,
    lu,
    matmul,
    radio,
    ring,
    strings,
    video,
    volume,
)

__all__ = [
    "gameoflife",
    "gol_service",
    "lu",
    "matmul",
    "radio",
    "ring",
    "strings",
    "video",
    "volume",
]
