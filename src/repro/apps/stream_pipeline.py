"""Bursty unbounded streaming pipeline — the stream-API showcase.

A :class:`~repro.core.streams.StreamSource` injects items on a seeded
bursty arrival schedule, parallel leaf workers transform them, a
:class:`~repro.core.windows.WindowedStream` aggregates them into
tumbling (or sliding) windows, and a final merge folds the closed
windows into one order-independent digest:

    ingest (StreamSource) >> transform (leaf xN) >> window-agg
    (WindowedStream, single instance) >> summary (merge)

The digest is a pure function of the aggregated window contents — no
timestamps, no arrival order — so the same job must produce the
bit-identical digest on the simulated, threaded and multiprocess
engines, and again when a kernel is killed mid-stream and the replay
path re-delivers the lost tokens (exactly-once per window: a duplicate
delivery would change a window's count/checksum and break the digest).

Per-window latency (merge receipt minus window close, both on the
engine clock) is carried alongside but excluded from the digest, so the
soak harness can report p99 window latency without perturbing the
cross-engine comparison.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from ..core import (
    ConstantRoute,
    DpsThread,
    FlowgraphNode,
    Flowgraph,
    LeafOperation,
    MergeOperation,
    RoundRobinRoute,
    ThreadCollection,
)
from ..core.streams import ArrivalProcess, StreamSource
from ..core.windows import (
    CHECKSUM_MOD,
    WindowResult,
    WindowSpec,
    WindowedStream,
    checksum_mix,
)
from ..runtime.base import RunResult, coerce_run_result
from ..serial import SimpleToken, Token

__all__ = ["StreamJob", "StreamRunStats", "build_stream_graph",
           "run_stream_pipeline", "oracle_digest"]


# ---------------------------------------------------------------------------
# tokens
# ---------------------------------------------------------------------------

class StreamJobToken(SimpleToken):
    """The whole run: arrival process + window geometry + work knob."""

    def __init__(self, items: int = 0, rate: float = 1000.0, burst: int = 8,
                 gap: float = 0.01, seed: int = 0, window: int = 16,
                 slide: int = 0, work: float = 0.0, salt: int = 1):
        self.items = items
        self.rate = rate
        self.burst = burst
        self.gap = gap
        self.seed = seed
        self.window = window
        self.slide = slide  # 0 = tumbling (slide == window)
        self.work = work
        self.salt = salt


class StreamItemToken(SimpleToken):
    """One stream element; carries the window spec so the aggregation
    stage needs no out-of-band configuration."""

    def __init__(self, seq: int = 0, value: int = 0, window: int = 16,
                 slide: int = 0, work: float = 0.0):
        self.seq = seq
        self.value = value
        self.window = window
        self.slide = slide
        self.work = work


class WindowToken(SimpleToken):
    """One closed window (the wire form of a ``WindowResult``)."""

    def __init__(self, window_id: int = 0, start: int = 0, end: int = 0,
                 count: int = 0, checksum: int = 0, complete: bool = False,
                 closed_at: float = 0.0):
        self.window_id = window_id
        self.start = start
        self.end = end
        self.count = count
        self.checksum = checksum
        self.complete = complete
        self.closed_at = closed_at


class StreamSummaryToken(SimpleToken):
    """The run summary: the cross-engine digest plus latency figures."""

    def __init__(self, items: int = 0, windows: int = 0,
                 complete_windows: int = 0, digest: int = 0,
                 p99_latency: float = 0.0, max_latency: float = 0.0):
        self.items = items
        self.windows = windows
        self.complete_windows = complete_windows
        self.digest = digest
        self.p99_latency = p99_latency
        self.max_latency = max_latency


# ---------------------------------------------------------------------------
# values: seeded, engine-independent integer arithmetic only
# ---------------------------------------------------------------------------

def _source_value(seq: int, salt: int) -> int:
    return (seq * 2_654_435_761 + salt) % CHECKSUM_MOD


def _transform_value(value: int) -> int:
    return (value * 1_000_003 + 12_345) % CHECKSUM_MOD


def _fold_digest(digest: int, window_id: int, count: int, checksum: int,
                 complete: bool) -> int:
    return (digest * 8_191
            + checksum_mix(window_id, checksum)
            + count * 31 + (1 if complete else 0)) % CHECKSUM_MOD


# ---------------------------------------------------------------------------
# operations
# ---------------------------------------------------------------------------

class StreamMainThread(DpsThread):
    pass


class StreamWorkThread(DpsThread):
    pass


class StreamAggThread(DpsThread):
    pass


class StreamIngest(StreamSource):
    """Bursty ingest: the arrival process comes from the job token."""

    thread_type = StreamMainThread
    in_types = (StreamJobToken,)
    out_types = (StreamItemToken,)

    def arrival_process(self, job: StreamJobToken) -> ArrivalProcess:
        return ArrivalProcess(rate=job.rate, burst=job.burst, gap=job.gap,
                              items=job.items, seed=job.seed)

    def make_token(self, seq: int, job: StreamJobToken) -> Optional[Token]:
        return StreamItemToken(seq, _source_value(seq, job.salt),
                               job.window, job.slide, job.work)


class StreamTransform(LeafOperation):
    """Stateless per-item transform on the parallel worker tier."""

    thread_type = StreamWorkThread
    in_types = (StreamItemToken,)
    out_types = (StreamItemToken,)

    def execute(self, tok: StreamItemToken):
        if tok.work > 0:
            yield self.charge_seconds(tok.work)
        yield self.post(StreamItemToken(tok.seq, _transform_value(tok.value),
                                        tok.window, tok.slide, tok.work))


class StreamWindowAgg(WindowedStream):
    """Watermark-driven windowed aggregation (new stream contract)."""

    thread_type = StreamAggThread
    in_types = (StreamItemToken,)
    out_types = (WindowToken,)

    def window_of(self, token: StreamItemToken) -> WindowSpec:
        return WindowSpec(token.window, token.slide or None)

    def seq_of(self, token: StreamItemToken) -> int:
        return token.seq

    def value_of(self, token: StreamItemToken) -> int:
        return token.value

    def make_result(self, result: WindowResult) -> Token:
        return WindowToken(result.window_id, result.start, result.end,
                           result.count, result.checksum, result.complete,
                           result.closed_at)


class StreamSummarize(MergeOperation):
    """Fold closed windows into the order-independent run digest.

    A duplicated or lost window delivery changes ``digest`` — the merge
    is therefore also the exactly-once detector for the soak harness.
    """

    thread_type = StreamMainThread
    in_types = (WindowToken,)
    out_types = (StreamSummaryToken,)

    def execute(self, tok: WindowToken):
        windows: dict = {}
        latencies: List[float] = []
        while tok is not None:
            # the digest fold below is over the sorted window ids, so
            # delivery order cannot matter; a duplicate id can only
            # come from a broken exactly-once path and must not cancel
            # out, so it corrupts the entry instead of replacing it
            key = tok.window_id
            if key in windows:
                # duplicate window delivery: poison the digest visibly
                windows[key] = (windows[key][0] + tok.count,
                                (windows[key][1] + tok.checksum + 1)
                                % CHECKSUM_MOD, False)
            else:
                windows[key] = (tok.count, tok.checksum, tok.complete)
            latencies.append(max(0.0, self.now() - tok.closed_at))
            tok = yield self.next_token()
        digest = 0
        items = 0
        complete = 0
        for window_id in sorted(windows):
            count, checksum, is_complete = windows[window_id]
            digest = _fold_digest(digest, window_id, count, checksum,
                                  is_complete)
            items += count
            complete += 1 if is_complete else 0
        latencies.sort()
        p99 = latencies[min(len(latencies) - 1,
                            int(0.99 * len(latencies)))] if latencies else 0.0
        yield self.post(StreamSummaryToken(
            items=items, windows=len(windows), complete_windows=complete,
            digest=digest, p99_latency=p99,
            max_latency=latencies[-1] if latencies else 0.0))


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

@dataclass
class StreamJob:
    """One streaming run (defaults: a short but genuinely bursty job)."""

    items: int = 512
    rate: float = 4000.0
    burst: int = 16
    gap: float = 0.004
    seed: int = 7
    window: int = 32
    slide: Optional[int] = None
    work: float = 0.0002
    salt: int = 1

    def token(self) -> StreamJobToken:
        return StreamJobToken(items=self.items, rate=self.rate,
                              burst=self.burst, gap=self.gap, seed=self.seed,
                              window=self.window, slide=self.slide or 0,
                              work=self.work, salt=self.salt)

    def spec(self) -> WindowSpec:
        return WindowSpec(self.window, self.slide)


@dataclass
class StreamRunStats:
    items: int
    windows: int
    complete_windows: int
    digest: int
    p99_window_latency: float
    max_window_latency: float
    makespan: float
    sustained_tps: float
    recovered: bool = False
    replayed_tokens: int = 0


def build_stream_graph(main_node: str, worker_nodes: List[str],
                       agg_node: Optional[str] = None,
                       name: str = "stream-pipeline") -> Flowgraph:
    """Build the four-stage streaming graph.

    The aggregation stage is a single-instance collection (watermark
    state is per-instance); it may live on its own node so the worker
    tier can be killed under it in the soak harness.
    """
    main = ThreadCollection(StreamMainThread, f"{name}-main").map(main_node)
    workers = ThreadCollection(StreamWorkThread,
                               f"{name}-work").map_nodes(worker_nodes)
    agg = ThreadCollection(StreamAggThread,
                           f"{name}-agg").map(agg_node or main_node)
    return Flowgraph(
        FlowgraphNode(StreamIngest, main)
        >> FlowgraphNode(StreamTransform, workers, RoundRobinRoute)
        >> FlowgraphNode(StreamWindowAgg, agg, ConstantRoute)
        >> FlowgraphNode(StreamSummarize, main),
        name,
    )


def run_stream_pipeline(engine, job: StreamJob, main_node: str,
                        worker_nodes: List[str],
                        agg_node: Optional[str] = None,
                        name: str = "stream-pipeline",
                        timeout: float = 120.0) -> StreamRunStats:
    """Run one streaming job on any engine; returns normalized stats."""
    import inspect

    graph = build_stream_graph(main_node, worker_nodes, agg_node, name)
    engine.register_graph(graph)
    started = time.monotonic()
    if "timeout" in inspect.signature(engine.run).parameters:
        outcome = engine.run(graph, job.token(), timeout=timeout)
    else:
        outcome = engine.run(graph, job.token())  # SimEngine: virtual time
    result = coerce_run_result(outcome, started, time.monotonic())
    # The real-execution engines return the bare token and publish the
    # recovery outcome on last_result; the sim returns it directly.
    last = getattr(engine, "last_result", None)
    if last is not None and not isinstance(outcome, RunResult):
        result.recovered = last.recovered
        result.replayed_tokens = last.replayed_tokens
    tok = result.token
    makespan = result.makespan
    return StreamRunStats(
        items=tok.items,
        windows=tok.windows,
        complete_windows=tok.complete_windows,
        digest=tok.digest,
        p99_window_latency=tok.p99_latency,
        max_window_latency=tok.max_latency,
        makespan=makespan,
        sustained_tps=tok.items / makespan if makespan > 0 else 0.0,
        recovered=result.recovered,
        replayed_tokens=result.replayed_tokens,
    )


def oracle_digest(job: StreamJob) -> StreamRunStats:
    """Pure-Python reference: the digest the pipeline must produce.

    Replays the value pipeline (source -> transform -> windowed fold ->
    digest) with no engine at all; every engine run — including one that
    lost and replayed a kernel — must match this digest bit for bit.
    """
    spec = job.spec()
    accums: dict = {}
    n = 0
    for seq, _delay in ArrivalProcess(rate=job.rate, burst=job.burst,
                                      gap=job.gap, items=job.items,
                                      seed=job.seed).schedule():
        value = _transform_value(_source_value(seq, job.salt))
        for window_id in spec.windows_of(seq):
            count, checksum = accums.get(window_id, (0, 0))
            accums[window_id] = (count + 1,
                                 (checksum + checksum_mix(seq, value))
                                 % CHECKSUM_MOD)
        n += 1
    digest = 0
    items = 0
    complete = 0
    for window_id in sorted(accums):
        count, checksum = accums[window_id]
        is_complete = count == spec.size
        digest = _fold_digest(digest, window_id, count, checksum, is_complete)
        items += count
        complete += 1 if is_complete else 0
    return StreamRunStats(
        items=items, windows=len(accums), complete_windows=complete,
        digest=digest, p99_window_latency=0.0, max_window_latency=0.0,
        makespan=0.0, sustained_tps=0.0)
