"""Parallel 3-D volume slice server — the first-generation DPS workload.

The parallel-schedules approach was born on data-intensive imaging
services (paper §1): out-of-core parallel access to 3-D volume images
[20] and streaming real-time slice extraction from time-varying volumes
(the 4-D beating-heart slice server [22]).  This module rebuilds that
service on the reproduction framework:

- the volume is partitioned along its depth axis into *extents*, one per
  storage node; extents live on the node's disk (reads charge disk
  time at :data:`VOLUME_DISK_BYTES_PER_SECOND`);
- the exposed ``slice`` graph extracts an orthogonal slice: the split
  intersects the requested plane with the extents, owners read and crop
  their parts (disk + CPU charges), and the merge reassembles the slice
  — one inter-application graph call per slice, so a visualization
  client streams slices while other requests are in flight (pipelined
  by construction).

Axis 0 slices live in a single extent (one reader); axis 1/2 slices
cross *every* extent — the genuinely parallel case the service exists
for.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

import numpy as np

from ..cluster import costs
from ..core import (
    ConstantRoute,
    DpsThread,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    SplitOperation,
    ThreadCollection,
    route_fn,
)
from ..runtime import RunResult, SimEngine
from ..serial import Buffer, ComplexToken, SimpleToken
from ..simkernel import Event

__all__ = ["DistributedVolume", "VOLUME_DISK_BYTES_PER_SECOND"]

#: sustained read bandwidth of each storage node's disk array
VOLUME_DISK_BYTES_PER_SECOND = 25e6

_instance_counter = itertools.count(1)


# ---------------------------------------------------------------------------
# tokens
# ---------------------------------------------------------------------------

class VolLoadToken(ComplexToken):
    def __init__(self, volume=None):
        self.volume = Buffer(volume if volume is not None else [])


class VolExtentToken(ComplexToken):
    def __init__(self, owner: int = 0, data=None, z_start: int = 0):
        self.owner = owner
        self.data = Buffer(data if data is not None else [])
        self.z_start = z_start


class VolAckToken(SimpleToken):
    def __init__(self, owner: int = 0):
        self.owner = owner


class VolSyncToken(SimpleToken):
    def __init__(self, count: int = 0):
        self.count = count


class VolSliceRequest(SimpleToken):
    """Extract the orthogonal slice ``axis = index`` of the volume."""

    def __init__(self, axis: int = 0, index: int = 0):
        self.axis = axis
        self.index = index


class VolPartRequest(SimpleToken):
    def __init__(self, owner: int = 0, axis: int = 0, index: int = 0,
                 out_offset: int = 0):
        self.owner = owner
        self.axis = axis
        self.index = index
        #: row offset of this extent's contribution in the output slice
        self.out_offset = out_offset


class VolSlicePart(ComplexToken):
    def __init__(self, owner: int = 0, out_offset: int = 0, data=None):
        self.owner = owner
        self.out_offset = out_offset
        self.data = Buffer(data if data is not None else [])


class VolSliceToken(ComplexToken):
    def __init__(self, axis: int = 0, index: int = 0, data=None):
        self.axis = axis
        self.index = index
        self.data = Buffer(data if data is not None else [])


# ---------------------------------------------------------------------------
# threads / ops
# ---------------------------------------------------------------------------

class VolMasterThread(DpsThread):
    pass


class VolStorageThread(DpsThread):
    """Owns one extent of the volume (modelled as on-disk data)."""

    def __init__(self):
        self.extent: Optional[np.ndarray] = None
        self.z_start = 0


_ByOwner = route_fn("VolByOwner", lambda tok, n: tok.owner % n)


class VolLoadSplit(SplitOperation):
    thread_type = VolMasterThread
    in_types = (VolLoadToken,)
    out_types = (VolExtentToken,)

    n_extents = 1

    def execute(self, tok: VolLoadToken):
        volume = tok.volume.array
        bounds = np.linspace(0, volume.shape[0], self.n_extents + 1).astype(int)
        for i in range(self.n_extents):
            extent = np.ascontiguousarray(volume[bounds[i]:bounds[i + 1]])
            self.post(VolExtentToken(i, extent, int(bounds[i])))


class VolStoreExtent(LeafOperation):
    thread_type = VolStorageThread
    in_types = (VolExtentToken,)
    out_types = (VolAckToken,)

    def execute(self, tok: VolExtentToken):
        t = self.thread
        t.extent = tok.data.array.copy()
        t.z_start = tok.z_start
        # writing the extent to the local disk array
        yield self.charge_seconds(t.extent.nbytes / VOLUME_DISK_BYTES_PER_SECOND)
        yield self.post(VolAckToken(tok.owner))


class VolSyncMerge(MergeOperation):
    thread_type = VolMasterThread
    in_types = (VolAckToken,)
    out_types = (VolSyncToken,)

    def execute(self, tok):
        count = 0
        while tok is not None:
            count += 1
            tok = yield self.next_token()
        yield self.post(VolSyncToken(count))


class VolSliceSplit(SplitOperation):
    """(a) intersect the requested plane with the extents."""

    thread_type = VolMasterThread
    in_types = (VolSliceRequest,)
    out_types = (VolPartRequest,)

    #: extent boundaries along axis 0 (len n_extents+1)
    bounds: tuple = (0, 0)
    shape: tuple = (0, 0, 0)

    def execute(self, tok: VolSliceRequest):
        if not 0 <= tok.axis <= 2:
            raise ValueError(f"axis must be 0..2, got {tok.axis}")
        if not 0 <= tok.index < self.shape[tok.axis]:
            raise ValueError(
                f"slice {tok.index} outside axis {tok.axis} of size "
                f"{self.shape[tok.axis]}"
            )
        if tok.axis == 0:
            # the slice lives in exactly one extent
            owner = int(np.searchsorted(self.bounds, tok.index, "right") - 1)
            self.post(VolPartRequest(owner, tok.axis, tok.index, 0))
        else:
            # the slice crosses every extent; parts stack by z offset
            for owner in range(len(self.bounds) - 1):
                self.post(VolPartRequest(
                    owner, tok.axis, tok.index, int(self.bounds[owner])
                ))


class VolReadPart(LeafOperation):
    """(b) read and crop the extent's contribution from disk."""

    thread_type = VolStorageThread
    in_types = (VolPartRequest,)
    out_types = (VolSlicePart,)

    def execute(self, tok: VolPartRequest):
        t = self.thread
        if tok.axis == 0:
            part = t.extent[tok.index - t.z_start].copy()
        elif tok.axis == 1:
            part = t.extent[:, tok.index, :].copy()
        else:
            part = t.extent[:, :, tok.index].copy()
        # out-of-core access: the extent rows containing the slice are
        # fetched from the disk array, then cropped in memory
        yield self.charge_seconds(part.nbytes / VOLUME_DISK_BYTES_PER_SECOND)
        yield self.charge_seconds(part.nbytes / costs.MEMCPY_BYTES_PER_SECOND)
        yield self.post(VolSlicePart(tok.owner, tok.out_offset, part))


class VolSliceMerge(MergeOperation):
    """(c) reassemble the slice from the extent parts."""

    thread_type = VolMasterThread
    in_types = (VolSlicePart,)
    out_types = (VolSliceToken,)

    def execute(self, tok: VolSlicePart):
        parts = []
        while tok is not None:
            parts.append((tok.out_offset, tok.data.array))
            tok = yield self.next_token()
        parts.sort(key=lambda p: p[0])
        if len(parts) == 1:
            data = parts[0][1]
        else:
            data = np.vstack([p[1] for p in parts])
        yield self.post(VolSliceToken(data=data))


# ---------------------------------------------------------------------------
# the service wrapper
# ---------------------------------------------------------------------------

class DistributedVolume:
    """A 3-D volume distributed over storage nodes, exposing a slice
    service.

    ``master_node`` defaults to the first storage node.  After
    :meth:`load`, slices are served through :meth:`read_slice`
    (synchronous) or :meth:`start_slice` (for streaming clients); other
    DPS applications may call the graph by name
    (:attr:`slice_graph_name`).
    """

    def __init__(self, engine: SimEngine, volume: np.ndarray,
                 storage_nodes: List[str],
                 master_node: Optional[str] = None):
        volume = np.asarray(volume, dtype=np.uint8)
        if volume.ndim != 3:
            raise ValueError("volume must be 3-D")
        if not storage_nodes:
            raise ValueError("need at least one storage node")
        if volume.shape[0] < len(storage_nodes):
            raise ValueError(
                f"volume of depth {volume.shape[0]} cannot be split over "
                f"{len(storage_nodes)} extents"
            )
        self.engine = engine
        self.volume0 = volume
        self.n_extents = len(storage_nodes)
        uid = next(_instance_counter)
        self._master = ThreadCollection(
            VolMasterThread, f"vol{uid}-master"
        ).map(master_node or storage_nodes[0])
        self._storage = ThreadCollection(
            VolStorageThread, f"vol{uid}-store"
        ).map_nodes(storage_nodes)

        bounds = tuple(
            int(b) for b in
            np.linspace(0, volume.shape[0], self.n_extents + 1).astype(int)
        )
        load_split = type(f"VolLoadSplit_{uid}", (VolLoadSplit,),
                          {"n_extents": self.n_extents})
        slice_split = type(f"VolSliceSplit_{uid}", (VolSliceSplit,),
                           {"bounds": bounds, "shape": volume.shape})
        self.load_graph = Flowgraph(
            FlowgraphNode(load_split, self._master)
            >> FlowgraphNode(VolStoreExtent, self._storage, _ByOwner)
            >> FlowgraphNode(VolSyncMerge, self._master),
            f"vol{uid}.load",
        )
        self.slice_graph = Flowgraph(
            FlowgraphNode(slice_split, self._master)
            >> FlowgraphNode(VolReadPart, self._storage, _ByOwner)
            >> FlowgraphNode(VolSliceMerge, self._master),
            f"vol{uid}.slice",
        )
        engine.register_graph(self.load_graph, app_name=f"vol{uid}")
        engine.register_graph(self.slice_graph, app_name=f"vol{uid}")
        self._loaded = False

    @property
    def slice_graph_name(self) -> str:
        return self.slice_graph.name

    def load(self) -> RunResult:
        """Distribute the extents onto the storage nodes' disks."""
        result = self.engine.run(self.load_graph, VolLoadToken(self.volume0))
        self._loaded = True
        return result

    def _validate_request(self, axis: int, index: int) -> None:
        if not self._loaded:
            raise RuntimeError("call load() before reading slices")
        if not 0 <= axis <= 2:
            raise ValueError(f"axis must be 0..2, got {axis}")
        if not 0 <= index < self.volume0.shape[axis]:
            raise ValueError(
                f"slice {index} outside axis {axis} of size "
                f"{self.volume0.shape[axis]}"
            )

    def read_slice(self, axis: int, index: int) -> np.ndarray:
        """Extract one orthogonal slice (runs the engine to completion)."""
        self._validate_request(axis, index)
        result = self.engine.run(
            self.slice_graph, VolSliceRequest(axis, index)
        )
        return result.token.data.array

    def start_slice(self, axis: int, index: int,
                    driver_node: Optional[str] = None) -> Event:
        """Asynchronous slice request for streaming driver processes."""
        self._validate_request(axis, index)
        return self.engine.start(
            self.slice_graph, VolSliceRequest(axis, index),
            driver_node=driver_node,
        )
