"""Admission control for the resident service tier.

One frozen policy object answers the three questions a multi-tenant
service console has to settle before it touches a request:

- how many graph calls may *execute* concurrently (``max_concurrent`` —
  one worker thread each, so this also bounds scheduler pressure on the
  kernel cluster),
- how many admitted calls may *wait* behind them (``max_queue`` —
  bounded queueing converts overload into fast ``MSG_SVC_BUSY`` sheds
  instead of unbounded latency), and
- how many calls one client session may have in flight
  (``session_window`` — the per-client flow-control window, the
  :class:`~repro.core.flowcontrol.SplitWindow` semantics applied at the
  session boundary so a single aggressive client cannot monopolise the
  shared cluster).

A request is shed when the cluster is draining, when its session window
is full, or when ``outstanding >= capacity`` (executing + queued).  A
shed burns the request id — the client retries under a *new* id, which
is what keeps admission decisions distinguishable from lost frames
(those are resent under the *same* id and deduplicated server-side).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AdmissionPolicy"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Knobs for the service console's admission decisions."""

    #: Graph calls executing at once (service worker threads).
    max_concurrent: int = 4
    #: Admitted calls allowed to queue behind the executing ones.
    max_queue: int = 16
    #: Per-client in-flight cap; also the largest window a session open
    #: may request.
    session_window: int = 8

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.max_queue < 0:
            raise ValueError("max_queue must be >= 0")
        if self.session_window < 1:
            raise ValueError("session_window must be >= 1")

    @property
    def capacity(self) -> int:
        """Total admitted calls the console will hold (executing+queued)."""
        return self.max_concurrent + self.max_queue

    def grant_window(self, requested: int) -> int:
        """Clamp a session-open window request; 0 means "server default"."""
        if requested <= 0:
            return self.session_window
        return max(1, min(int(requested), self.session_window))
