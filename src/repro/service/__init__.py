"""The resident service tier: one DPS cluster, many client processes.

The paper's parallel services (§ "Parallel services", Figure 10,
Table 2) made applications callable: a flow graph registered under a
name, invoked by *other* applications as if it were a leaf operation.
This package is that story on the multiprocess engine —

- :class:`ServiceEngine` boots a kernel cluster once, publishes named
  graphs (with token-type signatures) in the TCP name server, and stays
  resident serving graph calls,
- :class:`AdmissionPolicy` bounds concurrency, queueing and per-client
  session windows, shedding overload with ``MSG_SVC_BUSY``,
- :class:`ServiceClient` is the external caller: sessions, windowed
  in-flight calls, out-of-order reply correlation, busy/failure retries
  and same-id resends with server-side exactly-once dedup.

See ``DESIGN.md`` §5f for the protocol, ``repro.cli serve`` /
``repro.cli call`` for the command-line surface, and
``benchmarks/test_service_tier.py`` for the multi-client load harness.
"""

from .admission import AdmissionPolicy
from .client import (
    ServiceBusy,
    ServiceCall,
    ServiceClient,
    ServiceError,
    ServiceTimeout,
)
from .engine import ServiceEngine, ServiceKernel
from .records import graph_signature

__all__ = [
    "AdmissionPolicy",
    "ServiceBusy",
    "ServiceCall",
    "ServiceClient",
    "ServiceEngine",
    "ServiceError",
    "ServiceKernel",
    "ServiceTimeout",
    "graph_signature",
]
