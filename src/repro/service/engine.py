"""The resident service runtime: a DPS cluster that serves graph calls.

:class:`ServiceEngine` is the serving mode of
:class:`~repro.runtime.multiprocess_engine.MultiprocessEngine`: the
kernel cluster boots once, every exposed graph is published as a
*service record* (name + token-type signature) in the TCP name server,
and the console kernel then stays resident, accepting ``MSG_SVC_*``
graph calls from many concurrent external client processes instead of
running one job to completion.

The console-side protocol, implemented by :class:`ServiceKernel`:

1. A client registers its own listener in the name server and sends
   ``MSG_SVC_OPEN``; the console creates a *session* — an id plus a
   per-client :class:`~repro.core.flowcontrol.SplitWindow` bounding the
   client's in-flight calls — and answers ``MSG_SVC_OPEN_OK`` with the
   granted window.
2. Each ``MSG_SVC_CALL`` carries ``(client, request id, service name,
   token)``.  Request ids correlate replies out of order.  Admission
   runs *dedup first*: a resend of an already-admitted id (the client's
   lost-frame recovery) is dropped silently, never re-executed and
   never falsely shed.  Fresh requests are then shed with
   ``MSG_SVC_BUSY`` when the console is draining, the session window is
   full, or the bounded queue is at capacity — a shed burns the id, so
   busy retries arrive under a new one.
3. Admitted calls queue for a fixed pool of service workers; each
   worker drives one activation through the ordinary
   ``DistributedKernel.run`` path (so the fault-tolerance machinery —
   heartbeats, remap, split-boundary replay — applies to service
   traffic unchanged) and answers ``MSG_SVC_REPLY`` on success or
   ``MSG_SVC_ERROR`` with the pickled exception on failure.
4. ``drain_and_shutdown`` unpublishes the records, stops admitting
   (``draining`` sheds), waits for in-flight calls to finish, then
   tears the cluster down.

Everything is observable: ``svc_calls`` / ``svc_shed`` /
``svc_duplicates`` counters, ``svc_sessions`` / ``svc_queue_depth`` /
``svc_inflight`` gauges and per-service ``svc_latency_seconds:<name>``
histograms land in the shared metrics registry; ``svc_call`` /
``svc_reply`` / ``svc_shed`` / ``svc_close`` events land in the trace
timeline.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..core.flowcontrol import SplitWindow
from ..core.graph import Flowgraph
from ..net import protocol as P
from ..net.kernel import CONSOLE_KERNEL, DistributedKernel
from ..net.recovery import ReplayDedup
from ..runtime.controller import ScheduleError
from ..runtime.multiprocess_engine import MultiprocessEngine
from .admission import AdmissionPolicy
from .records import graph_signature

__all__ = ["ServiceEngine", "ServiceKernel"]

#: Worker-queue sentinel ordering a service worker to exit.
_SVC_STOP = object()


class _Session:
    """One client's session: id plus its in-flight window."""

    __slots__ = ("client", "session_id", "granted", "window")

    def __init__(self, client: str, session_id: int, granted: int):
        self.client = client
        self.session_id = session_id
        self.granted = granted
        # SplitWindow semantics at the session boundary: instance 0 is
        # the only "destination", in_flight is the client's open calls.
        self.window = SplitWindow(granted)


class ServiceKernel(DistributedKernel):
    """A console kernel that accepts service sessions and graph calls."""

    def __init__(self, *args, admission: Optional[AdmissionPolicy] = None,
                 call_timeout: float = 60.0, **kwargs):
        super().__init__(*args, **kwargs)
        self.admission = admission if admission is not None \
            else AdmissionPolicy()
        self.call_timeout = call_timeout
        self._svc_lock = threading.Lock()
        self._svc_idle = threading.Condition(self._svc_lock)
        self._svc_graphs: Dict[str, Flowgraph] = {}
        self._sessions: Dict[str, _Session] = {}
        self._session_counter = 0
        #: Exactly-once admission keyed by (client, session, request id):
        #: the same machinery the data plane uses for replay dedup.
        self._svc_dedup = ReplayDedup()
        self._svc_queue: "queue.Queue" = queue.Queue()
        self._svc_workers: List[threading.Thread] = []
        self._svc_outstanding = 0
        self._svc_draining = False

    # ------------------------------------------------------------------
    # publication / lifecycle
    # ------------------------------------------------------------------
    def expose_service(self, public_name: str, graph: Flowgraph) -> None:
        """Publish *graph* as *public_name* in the name server."""
        in_types, out_types = graph_signature(graph)
        with self._svc_lock:
            self._svc_graphs[public_name] = graph
        self._ns.register_service(public_name, self.name,
                                  in_types, out_types)

    def start_service_workers(self) -> None:
        if self._svc_workers:
            return
        for i in range(self.admission.max_concurrent):
            worker = threading.Thread(
                target=self._svc_worker_loop,
                name=f"dps-svc-worker-{i}", daemon=True)
            worker.start()
            self._svc_workers.append(worker)

    def svc_drain(self, timeout: float = 30.0) -> bool:
        """Stop admitting, let in-flight calls finish; True when empty."""
        with self._svc_lock:
            self._svc_draining = True
            services = list(self._svc_graphs)
        for name in services:
            try:
                self._ns.unregister_service(name)
            except Exception:
                pass  # name server already gone: nothing left to unpublish
        with self._svc_idle:
            drained = self._svc_idle.wait_for(
                lambda: self._svc_outstanding == 0, timeout=timeout)
        workers, self._svc_workers = self._svc_workers, []
        for _ in workers:
            self._svc_queue.put(_SVC_STOP)
        for worker in workers:
            worker.join(timeout=2.0)
        return drained

    def svc_stats(self) -> Dict[str, object]:
        with self._svc_lock:
            return {
                "services": sorted(self._svc_graphs),
                "sessions": len(self._sessions),
                "outstanding": self._svc_outstanding,
                "draining": self._svc_draining,
            }

    # ------------------------------------------------------------------
    # message plane
    # ------------------------------------------------------------------
    def _dispatch_message(self, kind: int, value) -> None:
        if kind == P.MSG_SVC_OPEN:
            client, requested = value
            self._svc_open(client, requested)
        elif kind == P.MSG_SVC_CALL:
            client, request_id, service, token = value
            self._svc_call(client, request_id, service, token)
        elif kind == P.MSG_SVC_CLOSE:
            self._svc_close(value)
        else:
            super()._dispatch_message(kind, value)

    def _svc_send(self, client: str, segments) -> None:
        try:
            self._pool.send(client, segments)
        except Exception:
            # The client vanished between admit and reply; its session
            # is torn down by the writer-side _on_peer_error.
            pass

    def _svc_open(self, client: str, requested: int) -> None:
        with self._svc_lock:
            session = self._sessions.get(client)
            if session is None:
                self._session_counter += 1
                granted = self.admission.grant_window(requested)
                session = _Session(client, self._session_counter, granted)
                self._sessions[client] = session
            if self.metrics is not None:
                self.metrics.gauge("svc_sessions").set(len(self._sessions))
        # Re-opening is idempotent: the same session (and window grant)
        # answers a retried OPEN, so a lost OPEN_OK cannot fork state.
        self._svc_send(client, P.encode_svc_open_ok(
            session.granted, session.session_id))

    def _svc_call(self, client: str, request_id: int, service: str,
                  token) -> None:
        with self._svc_lock:
            session = self._sessions.get(client)
            if session is None:
                self._svc_send(client, P.encode_svc_error(
                    request_id,
                    ScheduleError(f"no open session for client {client!r}; "
                                  f"send MSG_SVC_OPEN first")))
                return
            # Dedup BEFORE any shed decision: a resend of an admitted id
            # must be dropped (its original is executing or already
            # answered), never re-executed and never answered BUSY.
            if not self._svc_dedup.fresh(client, session.session_id,
                                         request_id):
                if self.metrics is not None:
                    self.metrics.counter("svc_duplicates").inc()
                return
            graph = self._svc_graphs.get(service)
            if graph is None:
                known = sorted(self._svc_graphs)
                self._svc_send(client, P.encode_svc_error(
                    request_id,
                    ScheduleError(f"unknown service {service!r}; "
                                  f"registered: {known}")))
                return
            entry = graph.node(graph.entry)
            if not entry.op_class.accepts(type(token)):
                # Rejecting bad input here (not inside run()) keeps the
                # error on the cheap protocol path: an exception raised
                # by an operation poisons the whole run-to-completion
                # engine, a signature mismatch must not.
                self._svc_send(client, P.encode_svc_error(
                    request_id,
                    ScheduleError(
                        f"service {service!r} does not accept "
                        f"{type(token).__name__}")))
                return
            reason = None
            if self._svc_draining:
                reason = "draining"
            elif not session.window.can_send:
                reason = (f"session window full "
                          f"({session.window.in_flight}/{session.granted})")
            elif self._svc_outstanding >= self.admission.capacity:
                reason = (f"at capacity ({self._svc_outstanding}/"
                          f"{self.admission.capacity})")
            if reason is None:
                session.window.on_post(0)
                self._svc_outstanding += 1
                if self.metrics is not None:
                    self.metrics.counter("svc_calls").inc()
                    self.metrics.gauge("svc_inflight").set(
                        min(self._svc_outstanding,
                            self.admission.max_concurrent))
                    self.metrics.gauge("svc_queue_depth").set(max(
                        0, self._svc_outstanding
                        - self.admission.max_concurrent))
            else:
                session.window.on_stall()
                if self.metrics is not None:
                    self.metrics.counter("svc_shed").inc()
        if reason is not None:
            if self.tracer is not None:
                self.trace("svc_shed", client=client, request=request_id,
                           service=service, reason=reason)
            self._svc_send(client, P.encode_svc_busy(request_id, reason))
            return
        if self.tracer is not None:
            self.trace("svc_call", client=client, request=request_id,
                       service=service)
        self._svc_queue.put((client, session, request_id, service, graph,
                             token, time.monotonic()))

    def _svc_worker_loop(self) -> None:
        while True:
            item = self._svc_queue.get()
            if item is _SVC_STOP:
                return
            client, session, request_id, service, graph, token, t0 = item
            try:
                result = self.run(graph, token, timeout=self.call_timeout)
                reply = P.encode_svc_reply(request_id, result)
            except BaseException as exc:
                reply = P.encode_svc_error(request_id, exc)
            self._svc_send(client, reply)
            elapsed = time.monotonic() - t0
            if self.metrics is not None:
                self.metrics.histogram(
                    f"svc_latency_seconds:{service}").observe(elapsed)
            if self.tracer is not None:
                self.trace("svc_reply", client=client, request=request_id,
                           service=service, seconds=elapsed)
            with self._svc_idle:
                self._svc_outstanding -= 1
                try:
                    session.window.on_ack(0)
                except (RuntimeError, ValueError):
                    pass  # session was dropped and replaced mid-call
                if self.metrics is not None:
                    self.metrics.gauge("svc_inflight").set(
                        min(self._svc_outstanding,
                            self.admission.max_concurrent))
                    self.metrics.gauge("svc_queue_depth").set(max(
                        0, self._svc_outstanding
                        - self.admission.max_concurrent))
                self._svc_idle.notify_all()

    def _svc_close(self, client: str) -> None:
        with self._svc_lock:
            dropped = self._sessions.pop(client, None)
            if self.metrics is not None:
                self.metrics.gauge("svc_sessions").set(len(self._sessions))
        if dropped is not None and self.tracer is not None:
            self.trace("svc_close", client=client)

    def _on_peer_error(self, peer: str, exc: Exception) -> None:
        # A broken client connection is a session drop, not a kernel
        # failure: it must never trigger cluster recovery or poison runs.
        with self._svc_lock:
            is_client = peer in self._sessions
        if is_client:
            self._svc_close(peer)
            return
        super()._on_peer_error(peer, exc)


class ServiceEngine(MultiprocessEngine):
    """A MultiprocessEngine that stays resident and serves graph calls.

    Usage::

        engine = ServiceEngine(admission=AdmissionPolicy(max_concurrent=4))
        engine.expose(graph, "gol.read")
        host, port = engine.serve()          # cluster is up, records live
        ...                                  # clients call via the port
        engine.drain_and_shutdown()

    ``recover`` defaults to *on* (unlike the batch engine's fail-fast
    default): a resident multi-tenant cluster should remap and replay
    around a dead kernel rather than fail every tenant.
    """

    def __init__(self, *args,
                 admission: Optional[AdmissionPolicy] = None,
                 call_timeout: float = 60.0,
                 recover: Optional[bool] = None,
                 **kwargs):
        super().__init__(*args,
                         recover=True if recover is None else recover,
                         **kwargs)
        self.admission = admission if admission is not None \
            else AdmissionPolicy()
        self.call_timeout = call_timeout
        self._exposed: Dict[str, Flowgraph] = {}
        self._serving = False

    def _make_console(self, ns_address, peers) -> DistributedKernel:
        return ServiceKernel(
            CONSOLE_KERNEL, 0, ns_address, peers,
            policy=self.policy, dial_deadline=self.dial_deadline,
            tracer=self.tracer, metrics=self.metrics,
            transport=self.transport, recover=self.recover,
            routing=self.routing,
            admission=self.admission, call_timeout=self.call_timeout)

    # ------------------------------------------------------------------
    # serving
    # ------------------------------------------------------------------
    def expose(self, graph: Flowgraph, name: Optional[str] = None) -> str:
        """Publish *graph* as a callable service (default: its name)."""
        public = name or graph.name
        if graph.name not in self._graphs:
            self.register_graph(graph)
        self._exposed[public] = graph
        if self._serving and self._console is not None:
            self._console.expose_service(public, graph)
        return public

    def serve(self) -> Tuple[str, int]:
        """Boot the cluster, publish every exposed graph, start workers.

        Returns the name-server ``(host, port)`` clients connect to
        (fix it across restarts with the ``ns_port`` constructor
        argument).  Idempotent: calling again returns the same address.
        """
        if not self._exposed:
            raise ScheduleError("no services exposed; call expose() first")
        console = self._ensure_started()
        if not self._serving:
            for public, graph in self._exposed.items():
                console.expose_service(public, graph)
            console.start_service_workers()
            self._serving = True
        assert self.ns_address is not None
        return self.ns_address

    @property
    def services(self) -> List[str]:
        return sorted(self._exposed)

    def service_stats(self) -> Dict[str, object]:
        console = self._console
        if console is None:
            return {"services": self.services, "sessions": 0,
                    "outstanding": 0, "draining": False}
        return console.svc_stats()

    def recovery_snapshot(self) -> Tuple[bool, int]:
        """``(recovered, replayed_tokens)`` observed by the console."""
        console = self._console
        if console is None:
            return False, 0
        return console.recovery_snapshot()

    def drain(self, timeout: float = 30.0) -> bool:
        """Unpublish, stop admitting, wait out in-flight calls."""
        self._serving = False
        console = self._console
        if console is None:
            return True
        return console.svc_drain(timeout)

    def drain_and_shutdown(self, timeout: float = 30.0) -> bool:
        """Graceful exit: drain, then tear the cluster down."""
        drained = self.drain(timeout)
        self.shutdown()
        return drained
