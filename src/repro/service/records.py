"""Service records: a graph's publishable token-type signature.

A resident service registers each exposed graph in the TCP name server
as ``(service name, provider kernel, in_types, out_types)``; the type
lists are the wire-format token-type names of the graph's entry and
exit operations.  Clients use the record for two things: the provider
name routes their session to the right console, and the signature lets
:func:`repro.core.remotecall.make_service_stub` materialise a typed
local leaf operation without importing the provider's graph code.
"""

from __future__ import annotations

from typing import Iterable, Tuple

from ..core.graph import Flowgraph
from ..serial.registry import TokenRegistry, registry

__all__ = ["graph_signature"]


def _type_names(types: Iterable[type],
                reg: TokenRegistry) -> Tuple[str, ...]:
    names = []
    for cls in types:
        try:
            names.append(reg.name_of(cls))
        except KeyError:
            # Not wire-registered (pure in-process token): fall back to
            # the class name so the record still describes the signature.
            names.append(cls.__name__)
    return tuple(names)


def graph_signature(graph: Flowgraph,
                    reg: TokenRegistry = registry
                    ) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """``(in_type_names, out_type_names)`` of *graph*'s entry/exit ops."""
    entry_cls = graph.node(graph.entry).op_class
    exit_cls = graph.node(graph.exit).op_class
    return (_type_names(entry_cls.in_types, reg),
            _type_names(exit_cls.out_types, reg))
