"""External client for the resident service tier.

A :class:`ServiceClient` lives in any process — it is *not* a kernel
and hosts no thread instances.  It registers a listener in the
cluster's name server (so the console can dial back with replies),
opens a session to obtain its flow-control window, and then issues
graph calls that correlate out of order by request id:

    with ServiceClient((host, port)) as client:
        result = client.call("gol.read", GolReadRequest(0, 0, 8, 8))

Concurrency and flow control: :meth:`ServiceClient.call_async` returns
a :class:`ServiceCall` future; a bounded semaphore sized to the granted
session window keeps at most *window* calls in flight, blocking the
caller — the client-side half of the
:class:`~repro.core.flowcontrol.SplitWindow` the console maintains.

Failure semantics mirror the admission protocol:

- ``MSG_SVC_BUSY`` raises :class:`ServiceBusy`; :meth:`ServiceClient.call`
  retries with exponential backoff under a **new** request id (the shed
  burned the old one).
- A lost frame is recovered by *resending the same id* after
  ``resend_after`` seconds of silence; the console's dedup drops the
  duplicate if the original was admitted, so a call is never executed
  twice (exactly-once).
- A broken connection or console failure settles every pending call
  with :class:`~repro.runtime.controller.KernelFailure`, which
  :meth:`ServiceClient.call` also retries — the resident cluster may
  just be remapping around a dead kernel.
- ``MSG_SVC_ERROR`` re-raises the remote exception in the caller.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Dict, List, Optional, Tuple

from ..net import protocol as P
from ..net.connections import ConnectionPool, TransportPolicy
from ..serial import fastpath
from ..net.framing import FrameReader
from ..net.kernel import CONSOLE_KERNEL
from ..net.nameserver import NameServerClient
from ..runtime.controller import KernelFailure
from ..serial.token import Token
from ..serial.wire import WireError

__all__ = ["ServiceBusy", "ServiceCall", "ServiceClient", "ServiceError",
           "ServiceTimeout"]


class ServiceError(RuntimeError):
    """Base class for client-side service failures."""


class ServiceBusy(ServiceError):
    """The console shed the request (admission control); retry later."""


class ServiceTimeout(ServiceError):
    """No reply within the caller's deadline."""


class ServiceCall:
    """One in-flight graph call; settled by the reader thread."""

    def __init__(self, client: "ServiceClient", request_id: int,
                 service: str, token: Token):
        self._client = client
        self.request_id = request_id
        self.service = service
        self._token = token
        self._event = threading.Event()
        self._kind: Optional[str] = None
        self._value = None
        self._released = False
        self._sent_at = time.monotonic()

    def _settle(self, kind: str, value) -> None:
        self._kind = kind
        self._value = value
        self._event.set()

    def result(self, timeout: float = 30.0,
               resend_after: Optional[float] = None) -> Token:
        """Block for the reply.

        With *resend_after*, the request is retransmitted under the
        **same** id after that many seconds of silence — safe against
        double execution because admitted ids are deduplicated
        server-side; this is the lost-frame recovery path, distinct
        from the new-id retry that follows a shed.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._client._forget(self)
                raise ServiceTimeout(
                    f"no reply for request {self.request_id} "
                    f"({self.service!r}) within {timeout}s")
            wait = remaining if resend_after is None else min(
                remaining, max(0.0, resend_after
                               - (time.monotonic() - self._sent_at)))
            if self._event.wait(timeout=max(wait, 0.001)):
                break
            if resend_after is not None and \
                    time.monotonic() - self._sent_at >= resend_after:
                self._client._resend(self)
                self._sent_at = time.monotonic()
        if self._kind == "ok":
            return self._value
        if self._kind == "busy":
            raise ServiceBusy(
                f"request {self.request_id} ({self.service!r}) shed: "
                f"{self._value}")
        raise self._value  # remote exception, re-raised natively


class ServiceClient:
    """A session to one resident service console."""

    def __init__(self, ns_address: Tuple[str, int], *,
                 window: int = 0,
                 server: str = CONSOLE_KERNEL,
                 name: Optional[str] = None,
                 dial_deadline: float = 15.0):
        self.name = name or \
            f"svc-client-{os.getpid()}-{os.urandom(3).hex()}"
        self.server = server
        self._requested_window = window
        self.session_id: Optional[int] = None
        self.window: Optional[int] = None
        self.busy_retries = 0
        self.failure_retries = 0
        self._lock = threading.Lock()
        self._pending: Dict[int, ServiceCall] = {}
        self._request_counter = 0
        self._slots: Optional[threading.BoundedSemaphore] = None
        self._open_event = threading.Event()
        self._failure: Optional[BaseException] = None
        self._closed = False

        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = self._listener.getsockname()[:2]

        self._ns = NameServerClient(ns_address)
        # Register WITHOUT a host fingerprint: the console then dials
        # back over plain TCP (no shared-memory lane handshake with a
        # non-kernel process).
        self._ns.register(self.name, *self.address)
        # The client is a leaf talker, not a kernel: plain per-peer
        # writer threads, no shm lane.
        self._pool = ConnectionPool(
            self._ns, hello_from=self.name, on_error=self._on_pool_error,
            dial_deadline=dial_deadline,
            transport=TransportPolicy(shm_enabled=False, io_mode="threads"))
        threading.Thread(target=self._accept_loop,
                         name=f"svc-accept:{self.name}",
                         daemon=True).start()

    # ------------------------------------------------------------------
    # session
    # ------------------------------------------------------------------
    def open(self, timeout: float = 10.0) -> int:
        """Open the session; returns the granted window.  Idempotent."""
        if self._slots is not None:
            return self.window or 0
        self._pool.send(self.server,
                        P.encode_svc_open(self.name,
                                          self._requested_window))
        if not self._open_event.wait(timeout=timeout):
            raise ServiceTimeout(
                f"service console {self.server!r} did not answer "
                f"MSG_SVC_OPEN within {timeout}s")
        with self._lock:
            if self._slots is None:
                self._slots = threading.BoundedSemaphore(self.window or 1)
        return self.window or 0

    def discover(self, max_age: Optional[float] = None) -> List[dict]:
        """Live service records from the name server (lease-filtered)."""
        return self._ns.services(max_age=max_age)

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def call_async(self, service: str, token: Token) -> ServiceCall:
        """Issue one call; blocks only for session-window space."""
        if self._closed:
            raise ServiceError("client is closed")
        # Precompile the per-token-type wire plan outside the lock; the
        # common service pattern sends many tokens of one type.
        fastpath.warm(token)
        self.open()
        failure = self._failure
        if failure is not None:
            raise failure
        assert self._slots is not None
        self._slots.acquire()
        with self._lock:
            self._request_counter += 1
            call = ServiceCall(self, self._request_counter, service, token)
            self._pending[call.request_id] = call
        try:
            self._pool.send(self.server, P.encode_svc_call(
                self.name, call.request_id, service, token))
        except Exception as exc:
            self._forget(call)
            raise KernelFailure(
                f"send to service console failed: {exc}") from exc
        return call

    def call(self, service: str, token: Token, timeout: float = 30.0,
             retries: int = 0, backoff: float = 0.05,
             resend_after: Optional[float] = None) -> Token:
        """One graph call with shed/failure retries.

        ``ServiceBusy`` (admission shed) and ``KernelFailure``
        (connection or cluster trouble) are retried up to *retries*
        times with exponential *backoff*, each attempt under a fresh
        request id.  Remote application exceptions are not retried —
        they re-raise immediately.
        """
        attempt = 0
        while True:
            try:
                return self.call_async(service, token).result(
                    timeout, resend_after=resend_after)
            except (ServiceBusy, KernelFailure) as exc:
                if attempt >= retries:
                    raise
                if isinstance(exc, ServiceBusy):
                    self.busy_retries += 1
                else:
                    self.failure_retries += 1
                    self._failure = None  # give the cluster another shot
                time.sleep(min(1.0, backoff * (2 ** attempt)))
                attempt += 1

    def _resend(self, call: ServiceCall) -> None:
        """Retransmit under the SAME id (server dedup absorbs it)."""
        try:
            self._pool.send(self.server, P.encode_svc_call(
                self.name, call.request_id, call.service, call._token))
        except Exception:
            pass  # the pool error callback settles the call

    def _forget(self, call: ServiceCall) -> None:
        with self._lock:
            self._pending.pop(call.request_id, None)
        self._release(call)

    def _release(self, call: ServiceCall) -> None:
        if not call._released and self._slots is not None:
            call._released = True
            self._slots.release()

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while True:
            try:
                conn, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(target=self._reader_loop, args=(conn,),
                             name=f"svc-recv:{self.name}",
                             daemon=True).start()

    def _reader_loop(self, conn: socket.socket) -> None:
        reader = FrameReader(conn)
        try:
            while True:
                frames = reader.recv_batch()
                if frames is None:
                    return
                for payload in frames:
                    kind, value = P.decode_message(payload, {})
                    self._dispatch(kind, value)
        except (OSError, WireError) as exc:
            if not self._closed:
                self._fail(KernelFailure(
                    f"service reply connection failed: {exc}"))
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _dispatch(self, kind: int, value) -> None:
        if kind == P.MSG_SVC_OPEN_OK:
            granted, session_id = value
            self.window = granted
            self.session_id = session_id
            self._open_event.set()
            return
        if kind in (P.MSG_SVC_REPLY, P.MSG_SVC_BUSY, P.MSG_SVC_ERROR):
            request_id, payload = value
            with self._lock:
                call = self._pending.pop(request_id, None)
            if call is None:
                return  # late duplicate reply for a forgotten call
            self._release(call)
            call._settle({P.MSG_SVC_REPLY: "ok",
                          P.MSG_SVC_BUSY: "busy",
                          P.MSG_SVC_ERROR: "error"}[kind], payload)
            return
        # HELLO and any broadcast traffic a console might fan out are
        # irrelevant to a session client.

    def _on_pool_error(self, peer: str, exc: Exception) -> None:
        if not self._closed:
            self._fail(KernelFailure(
                f"connection to service console {peer!r} failed: {exc}"))

    def _fail(self, exc: BaseException) -> None:
        self._failure = exc
        with self._lock:
            pending = list(self._pending.values())
            self._pending.clear()
        for call in pending:
            self._release(call)
            call._settle("error", exc)

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._pool.send(self.server, P.encode_svc_close(self.name))
        except Exception:
            pass  # console already gone
        try:
            self._pool.close_all()
        except Exception:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        self._ns.close()

    def __enter__(self) -> "ServiceClient":
        self.open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
