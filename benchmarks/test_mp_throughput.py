"""Multiprocess runtime benchmarks: wire throughput and real parallelism.

Two questions about the distributed runtime:

1. **Token throughput** — how fast do tokens move around the ring when
   every hop crosses a process boundary over TCP (framed scatter-gather
   sockets), compared with the ThreadedEngine where a hop is a queue
   append plus one in-memory wire round-trip?  The multiprocess path is
   expected to be *slower* per token — it pays real syscalls — and this
   records by how much.

2. **Real parallelism** — CPython's GIL serializes the ThreadedEngine's
   compute, so a CPU-bound fan-out should speed up on the multiprocess
   engine by >1.5x with 4 worker processes.  That assertion only makes
   sense with >= 4 usable cores, so it is skipped on smaller machines
   (the tokens/sec recording still runs everywhere).
"""

import os
import time

import pytest

from repro.apps.ring import RingJobToken, build_ring_graph
from repro.core import (
    DpsThread,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    RoundRobinRoute,
    SplitOperation,
    ThreadCollection,
)
from repro.runtime import MultiprocessEngine, ThreadedEngine
from repro.serial import SimpleToken

RING_NODES = ["node01", "node02", "node03", "node04"]
RING_BLOCK_BYTES = 8 * 1024
RING_BLOCKS = 200


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _ring_tokens_per_sec(engine, graph) -> float:
    # warm-up: cluster fork / lazy dials / thread creation
    engine.run(graph, RingJobToken(RING_BLOCK_BYTES, 4), timeout=120)
    t0 = time.perf_counter()
    done = engine.run(graph, RingJobToken(RING_BLOCK_BYTES, RING_BLOCKS),
                      timeout=120)
    elapsed = time.perf_counter() - t0
    assert done.blocks == RING_BLOCKS
    return RING_BLOCKS / elapsed


def test_ring_tokens_per_sec_mp_vs_threaded(capsys):
    """Record ring token throughput: multiprocess (TCP) vs threaded."""
    with ThreadedEngine() as teng:
        thr_rate = _ring_tokens_per_sec(teng, build_ring_graph(RING_NODES))

    with MultiprocessEngine() as meng:
        g = build_ring_graph(RING_NODES)
        meng.register_graph(g)
        mp_rate = _ring_tokens_per_sec(meng, g)

    with capsys.disabled():
        print(
            f"\n[mp-throughput] ring {RING_BLOCK_BYTES // 1024} KiB blocks, "
            f"{len(RING_NODES)} hops: threaded {thr_rate:,.0f} tok/s, "
            f"multiprocess {mp_rate:,.0f} tok/s "
            f"({mp_rate / thr_rate:.2f}x)"
        )
    # sanity floors only — the MP path pays real syscalls per hop and is
    # allowed to be much slower than in-process queues
    assert thr_rate > 10
    assert mp_rate > 10


# ---------------------------------------------------------------------------
# CPU-bound speedup: the reason the third engine exists
# ---------------------------------------------------------------------------

WORK_ITEMS = 8
WORK_SPINS = 120_000


class CpuJob(SimpleToken):
    def __init__(self, n=0):
        self.n = n


class CpuItem(SimpleToken):
    def __init__(self, seed=0, value=0):
        self.seed = seed
        self.value = value


class CpuTotal(SimpleToken):
    def __init__(self, total=0):
        self.total = total


class CpuMain(DpsThread):
    pass


class CpuWork(DpsThread):
    pass


class CpuFan(SplitOperation):
    thread_type = CpuMain
    in_types = (CpuJob,)
    out_types = (CpuItem,)

    def execute(self, tok):
        for i in range(tok.n):
            self.post(CpuItem(i))


class CpuBurn(LeafOperation):
    """Pure-Python arithmetic: GIL-bound on threads, parallel on processes."""

    thread_type = CpuWork
    in_types = (CpuItem,)
    out_types = (CpuItem,)

    def execute(self, tok):
        acc = tok.seed
        for i in range(WORK_SPINS):
            acc = (acc * 1103515245 + 12345 + i) % 2147483648
        self.post(CpuItem(tok.seed, acc))


class CpuReduce(MergeOperation):
    thread_type = CpuMain
    in_types = (CpuItem,)
    out_types = (CpuTotal,)

    def execute(self, tok):
        total = 0
        while tok is not None:
            total += tok.value
            tok = yield self.next_token()
        yield self.post(CpuTotal(total))


def cpu_graph(name: str, worker_nodes) -> Flowgraph:
    main = ThreadCollection(CpuMain, f"{name}-main").map(worker_nodes[0])
    work = ThreadCollection(CpuWork, f"{name}-work").map_nodes(worker_nodes)
    return Flowgraph(
        FlowgraphNode(CpuFan, main)
        >> FlowgraphNode(CpuBurn, work, RoundRobinRoute)
        >> FlowgraphNode(CpuReduce, main),
        name,
    )


def _cpu_elapsed(engine, graph) -> "tuple[float, int]":
    engine.run(graph, CpuJob(1), timeout=240)  # warm-up
    t0 = time.perf_counter()
    out = engine.run(graph, CpuJob(WORK_ITEMS), timeout=240)
    return time.perf_counter() - t0, out.total


def test_cpu_bound_speedup_on_four_processes(capsys):
    """>1.5x over the ThreadedEngine with 4 worker processes (GIL escape).

    Skipped on machines without 4 usable cores, where no amount of
    process parallelism can deliver the speedup being asserted.
    """
    cpus = _usable_cpus()
    with ThreadedEngine() as teng:
        thr_elapsed, thr_total = _cpu_elapsed(
            teng, cpu_graph("cpu-thr", RING_NODES))

    with MultiprocessEngine() as meng:
        g = cpu_graph("cpu-mp", RING_NODES)
        meng.register_graph(g)
        mp_elapsed, mp_total = _cpu_elapsed(meng, g)

    assert mp_total == thr_total  # identical results, whatever the timing
    speedup = thr_elapsed / mp_elapsed
    with capsys.disabled():
        print(
            f"\n[mp-throughput] cpu-bound fan-out x{WORK_ITEMS}: "
            f"threaded {thr_elapsed:.2f}s, multiprocess {mp_elapsed:.2f}s "
            f"= {speedup:.2f}x speedup ({cpus} usable cpus)"
        )
    if cpus < 4:
        pytest.skip(f"only {cpus} usable cpus; speedup assertion needs >= 4")
    assert speedup > 1.5
