"""Stream soak/chaos harness for the bursty streaming pipeline.

``run_soak`` drives ``repro.apps.stream_pipeline`` through four runs:

1. **sim oracle** — the pipeline on the simulated engine, checked
   bit-for-bit against the engine-free pure fold (``oracle_digest``);
2. **clean multiprocess** — real kernels over TCP; publishes sustained
   tokens/sec and p99 window latency (merge receipt minus window close);
3. **chaos multiprocess** — the same job with a worker kernel killed
   mid-stream (``kill_after_messages``, deterministic) and recovery
   armed: the run must report a recovery with replayed tokens and still
   produce the oracle digest — windowed results are exactly-once per
   window across the kill (a duplicate or lost window member changes a
   window checksum and breaks the digest);
4. **overload shed** — the simulated engine with a small lossy credit
   window (``shedding="shed"``), publishing how many tokens the window
   shed under a burst the pipeline cannot absorb.

``emit_bench.py`` imports ``run_soak`` to publish a ``streaming``
section into the committed ``BENCH_*.json``; the pytest wrapper keeps a
small but complete version of the same protocol in the tier-1 suite.

Run the minutes-scale soak directly::

    PYTHONPATH=src python benchmarks/test_stream_soak.py [items]
"""

import sys
import time

from repro.apps.stream_pipeline import (
    StreamJob,
    oracle_digest,
    run_stream_pipeline,
)
from repro.core import StreamPolicy
from repro.runtime import FaultPolicy, create_engine
from repro.trace import MetricsRegistry

MAIN_NODE = "node01"
WORKER_NODES = ["node02", "node03"]
AGG_NODE = "node04"
#: The kernel the chaos run kills: a worker hosting only stateless leaf
#: transforms (merge/stream state cannot be masked by replay — see the
#: recovery contract in DESIGN.md).
KILL_NODE = "node02"


def _job(items: int) -> StreamJob:
    return StreamJob(items=items, rate=8000.0, burst=16, gap=0.002,
                     seed=7, window=32, work=0.0001)


def run_soak(items: int = 512, kill_after_messages: int = 40,
             timeout: float = 300.0) -> dict:
    """Run the four-phase soak; returns the ``streaming`` bench report."""
    job = _job(items)
    oracle = oracle_digest(job)

    # 1. simulated engine vs the pure fold
    sim = run_stream_pipeline(create_engine("sim", nodes=4), job,
                              MAIN_NODE, WORKER_NODES, AGG_NODE,
                              name="soak-sim")

    # 2. clean multiprocess run
    with create_engine("multiprocess") as engine:
        clean = run_stream_pipeline(engine, job, MAIN_NODE, WORKER_NODES,
                                    AGG_NODE, name="soak-mp",
                                    timeout=timeout)

    # 3. kill a worker kernel mid-stream, recovery armed
    faults = FaultPolicy(kill_kernel=KILL_NODE,
                         kill_after_messages=kill_after_messages)
    with create_engine("multiprocess", recover=True,
                       faults=faults) as engine:
        chaos = run_stream_pipeline(engine, job, MAIN_NODE, WORKER_NODES,
                                    AGG_NODE, name="soak-chaos",
                                    timeout=timeout)

    # 4. overload a small lossy credit window (virtual time: exact)
    shed_job = StreamJob(items=min(items, 512), rate=50000.0, burst=64,
                         gap=0.0005, seed=7, window=32, work=0.002)
    metrics = MetricsRegistry()
    shed_engine = create_engine(
        "sim", nodes=4, metrics=metrics,
        stream=StreamPolicy(credit_window=8, shedding="shed"))
    shed = run_stream_pipeline(shed_engine, shed_job, MAIN_NODE,
                               WORKER_NODES, AGG_NODE, name="soak-shed")
    shed_count = metrics.counter("tokens_shed").value

    return {
        "items": items,
        "oracle_digest": oracle.digest,
        "sim_digest_matches": sim.digest == oracle.digest,
        "mp_digest_matches": clean.digest == oracle.digest,
        "chaos_digest_matches": chaos.digest == oracle.digest,
        "windows": clean.windows,
        "complete_windows": clean.complete_windows,
        "sustained_tokens_per_sec": round(clean.sustained_tps, 1),
        "p99_window_latency_ms": round(clean.p99_window_latency * 1e3, 2),
        "chaos_recovered": chaos.recovered,
        "chaos_replayed_tokens": chaos.replayed_tokens,
        "recovery_gap_s": round(max(0.0, chaos.makespan - clean.makespan),
                                3),
        "shed_tokens": shed_count,
        "shed_aggregated": shed.items,
    }


def test_stream_soak_smoke():
    report = run_soak(items=256, kill_after_messages=30, timeout=120.0)
    print()
    print(f"[stream-soak] {report}")
    # every engine, including the one that lost a kernel, agrees with
    # the engine-free oracle bit for bit
    assert report["sim_digest_matches"]
    assert report["mp_digest_matches"]
    assert report["chaos_digest_matches"]
    # the kill really happened and was masked by split-boundary replay
    assert report["chaos_recovered"] is True
    assert report["chaos_replayed_tokens"] > 0
    # the overload run really shed: lossy window + conserved totals
    assert report["shed_tokens"] > 0
    assert report["shed_aggregated"] + report["shed_tokens"] == 256
    assert report["sustained_tokens_per_sec"] > 0


if __name__ == "__main__":
    import os

    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5000
    t0 = time.perf_counter()
    out = run_soak(items=n)
    print(f"[stream-soak] {time.perf_counter() - t0:.1f}s {out}")
