"""Benchmark regenerating Figure 6: ring throughput, DPS vs raw sockets.

Paper claim: sockets rise from a few MB/s at 1 KB transfers to a
~35-40 MB/s plateau; DPS sits below sockets for small transfers and
converges to the socket curve for large ones.
"""

from repro.experiments import fig6_throughput


def _check_shape(result):
    sizes = result.data["size"]
    sock = result.data["sockets"]
    dps = result.data["dps"]
    # socket curve rises monotonically to a plateau near the NIC rate
    assert all(b >= a for a, b in zip(sock, sock[1:]))
    assert sock[-1] > 35.0
    assert sock[0] < 10.0
    # DPS is always below sockets ...
    assert all(d < s for d, s in zip(dps, sock))
    # ... clearly below at 1 KB ...
    assert dps[0] / sock[0] < 0.85
    # ... and converged at 1 MB
    assert dps[-1] / sock[-1] > 0.92


def test_fig6_ring_throughput(benchmark, full_scale):
    result = benchmark.pedantic(
        lambda: fig6_throughput.run(fast=not full_scale),
        rounds=1, iterations=1,
    )
    _check_shape(result)
    print()
    print(result.report())
