"""Emit a committed benchmark snapshot: ``BENCH_<date>_<sha>.json``.

Runs the small-token ring demo on the multiprocess engine in both I/O
modes — the selectors event loop (ISSUE 6 default) and the per-peer
writer / per-connection reader threads fallback — and records, per mode:

- ``tokens_per_sec``        ring throughput (median over pooled runs)
- ``frames_per_syscall``    mean coalescing factor at the senders
- ``latency_us_p50/p99``    per-token latency percentiles over runs
- ``threads_per_kernel``    live thread count in the console kernel
- ``io_loop_wakeups`` / ``partial_writes``  loop-health counters

Scheduling noise on a shared box dwarfs the mode difference within any
single engine lifetime (per-run rates vary 2-3x), so the protocol
interleaves lifetimes: eventloop, threads, eventloop, threads, ... for
``--reps`` rounds, pooling every timed run before taking the median.
Slow drift (another tenant, thermal state) then lands on both modes
symmetrically instead of biasing whichever ran second.

A ``codec`` section micro-benchmarks the wire codec itself (ISSUE 9):
encode+decode round trips/sec for the ring's scalar job token and its
Buffer-carrying block token, pure visitor vs the plan/compiled fast
path, with the fast/pure speedup.  The ``host`` section records which
codec flavour ran (``fast:plans+compiled`` needs a working C toolchain
at install time; ``fast:plans`` is the everywhere-available tier).
Throughput entries carry min/max alongside the median so the committed
numbers expose their own noise floor.

A ``service_tier`` section is appended from the resident-service load
harness (``test_service_tier.run_load``): a Game of Life service under
eight external client processes, publishing correct requests/sec,
latency p50/p99, and how many calls admission shed.

A ``streaming`` section is appended from the stream soak harness
(``test_stream_soak.run_soak``): the bursty windowed pipeline on the
simulated and multiprocess engines, publishing sustained tokens/sec,
p99 window latency, the chaos kill's replay count and recovery gap,
how many tokens a lossy credit window shed under overload, and the
bit-identical digest checks against the engine-free oracle.

An ``elastic`` section is appended from the elasticity harnesses
(``test_elastic``): the deterministic routing A/B (round-robin vs
queue-depth adaptive on a skewed simulated workload) and a live
2 -> 3 -> 2 kernel rescale of the multiprocess Game of Life — steps/sec
before/during/after, rebalance latency, thread instances moved, and the
bit-identical check.

The JSON lands in the repository root so the performance trajectory is
versioned next to the code it measures (CI re-emits one per push; see
``.github/workflows/ci.yml``).  Usage::

    PYTHONPATH=src python benchmarks/emit_bench.py [--blocks N]
        [--block-bytes B] [--runs R] [--reps K] [--out DIR]
"""

import argparse
import datetime
import json
import os
import platform
import statistics
import subprocess
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from test_elastic import run_elastic_load, run_routing_ab  # noqa: E402
from test_service_tier import run_load  # noqa: E402
from test_stream_soak import run_soak  # noqa: E402

from repro.apps.ring import (  # noqa: E402
    RingBlockToken,
    RingJobToken,
    build_ring_graph,
)
from repro.net import TransportPolicy  # noqa: E402
from repro.runtime import MultiprocessEngine  # noqa: E402
from repro.serial import decode, encode, fastpath  # noqa: E402
from repro.trace import MetricsRegistry  # noqa: E402

RING_NODES = ["node01", "node02", "node03", "node04"]
MODES = ("eventloop", "threads")


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _git_short_sha() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True, text=True, timeout=10,
        ).stdout.strip() or "nogit"
    except OSError:
        return "nogit"


def bench_lifetime(io_mode: str, metrics: MetricsRegistry, *,
                   blocks: int, block_bytes: int, runs: int):
    """One engine lifetime: warm up, then time *runs* rings.

    Returns ``(elapsed_seconds_per_run, threads_per_kernel)``.  The
    metrics registry is shared across a mode's lifetimes so counters and
    the frames_per_syscall histogram accumulate over the whole session.
    """
    transport = TransportPolicy(io_mode=io_mode)
    samples = []
    with MultiprocessEngine(transport=transport, metrics=metrics) as engine:
        graph = build_ring_graph(RING_NODES)
        engine.register_graph(graph)
        # warm-up: cluster fork, lazy dials, shm attach
        engine.run(graph, RingJobToken(block_bytes, 4), timeout=120)
        for _ in range(runs):
            t0 = time.perf_counter()
            done = engine.run(graph, RingJobToken(block_bytes, blocks),
                              timeout=120)
            elapsed = time.perf_counter() - t0
            assert done.blocks == blocks
            samples.append(elapsed)
        threads_per_kernel = len(threading.enumerate())
        engine.collect_traces()
    return samples, threads_per_kernel


def summarize(io_mode: str, samples, threads_per_kernel: int,
              metrics: MetricsRegistry, *, blocks: int) -> dict:
    tok_rates = sorted(blocks / s for s in samples)
    lat_us = sorted(s / blocks * 1e6 for s in samples)

    def pct(values, q):
        idx = min(len(values) - 1, max(0, round(q * (len(values) - 1))))
        return values[idx]

    fps = metrics.histogram("frames_per_syscall")
    counters = metrics.snapshot().get("counters", {})
    return {
        "tokens_per_sec": round(statistics.median(tok_rates), 1),
        # Median-of-pooled-runs with the spread: min/max expose how much
        # scheduler noise the median is hiding on a shared box.
        "tokens_per_sec_min": round(tok_rates[0], 1),
        "tokens_per_sec_max": round(tok_rates[-1], 1),
        "frames_per_syscall":
            round(fps.total / fps.count, 3) if fps.count else 0.0,
        "latency_us_p50": round(pct(lat_us, 0.50), 1),
        "latency_us_p99": round(pct(lat_us, 0.99), 1),
        "threads_per_kernel": threads_per_kernel,
        "io_loop_wakeups": counters.get("io_loop_wakeups", 0),
        "partial_writes": counters.get("partial_writes", 0),
        "flush_window_hits": counters.get("flush_window_hits", 0),
        "codec_fast_path": counters.get("codec_fast_path", 0),
    }


def bench_codec(*, block_bytes: int, rounds: int = 20_000,
                reps: int = 3) -> dict:
    """Codec micro-bench: ring-token encode+decode round trips/sec.

    Times the exact tokens the ring demo ships (the scalar job token and
    the Buffer-carrying block token) through the pure visitor and the
    fast path, interleaved per rep like the engine benchmark; reports the
    median rate with its min/max spread, plus the fast/pure ratio.
    """
    import numpy as np

    tokens = {
        "job_token": RingJobToken(block_bytes, 7),
        "block_token": RingBlockToken(
            np.arange(block_bytes, dtype=np.uint8), 3, 9),
    }
    saved = fastpath.get_codec()
    rates = {name: {"pure": [], "fast": []}
             for name in tokens}
    try:
        for _ in range(reps):
            for mode in ("pure", "fast"):
                fastpath.set_codec(mode)
                for name, tok in tokens.items():
                    fastpath.warm(tok)
                    decode(encode(tok))  # warm plans/caches off the clock
                    t0 = time.perf_counter()
                    for _ in range(rounds):
                        decode(encode(tok))
                    rates[name][mode].append(
                        rounds / (time.perf_counter() - t0))
    finally:
        fastpath.set_codec(saved)

    out = {"rounds": rounds, "reps": reps,
           "codec_in_use": fastpath.codec_in_use()}
    for name in tokens:
        section = {}
        for mode in ("pure", "fast"):
            values = sorted(rates[name][mode])
            section[mode] = {
                "roundtrips_per_sec": round(statistics.median(values), 1),
                "min": round(values[0], 1),
                "max": round(values[-1], 1),
            }
        section["speedup_fast_vs_pure"] = round(
            section["fast"]["roundtrips_per_sec"]
            / max(1e-9, section["pure"]["roundtrips_per_sec"]), 3)
        out[name] = section
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--blocks", type=int, default=300)
    parser.add_argument("--block-bytes", type=int, default=512)
    parser.add_argument("--runs", type=int, default=4,
                        help="timed ring runs per engine lifetime")
    parser.add_argument("--reps", type=int, default=3,
                        help="interleaved engine lifetimes per mode")
    parser.add_argument("--service-clients", type=int, default=8,
                        help="client processes for the service-tier load")
    parser.add_argument("--stream-items", type=int, default=512,
                        help="items pushed through the stream soak")
    parser.add_argument("--out", default=os.path.join(
        os.path.dirname(os.path.abspath(__file__)), ".."))
    args = parser.parse_args(argv)

    registries = {mode: MetricsRegistry() for mode in MODES}
    pooled = {mode: [] for mode in MODES}
    threads_per_kernel = {}
    for rep in range(args.reps):
        for io_mode in MODES:
            print(f"[emit_bench] rep {rep + 1}/{args.reps} {io_mode}: ring "
                  f"{args.blocks} x {args.block_bytes} B x {args.runs} runs",
                  flush=True)
            samples, tpk = bench_lifetime(
                io_mode, registries[io_mode], blocks=args.blocks,
                block_bytes=args.block_bytes, runs=args.runs)
            pooled[io_mode].extend(samples)
            threads_per_kernel[io_mode] = tpk

    modes = {}
    for io_mode in MODES:
        modes[io_mode] = summarize(
            io_mode, pooled[io_mode], threads_per_kernel[io_mode],
            registries[io_mode], blocks=args.blocks)
        print(f"[emit_bench] {io_mode}: {modes[io_mode]}", flush=True)

    print("[emit_bench] codec: ring-token encode+decode, pure vs fast "
          f"({fastpath.codec_in_use()})", flush=True)
    codec = bench_codec(block_bytes=args.block_bytes, reps=args.reps)
    print(f"[emit_bench] codec: {codec}", flush=True)

    print(f"[emit_bench] service tier: {args.service_clients} client "
          f"processes on the resident GoL service", flush=True)
    service_tier = run_load(n_clients=args.service_clients)
    print(f"[emit_bench] service_tier: {service_tier}", flush=True)

    print(f"[emit_bench] streaming: {args.stream_items}-item bursty "
          "windowed soak (sim oracle, mp, mp+kill, overload shed)",
          flush=True)
    streaming = run_soak(items=args.stream_items)
    print(f"[emit_bench] streaming: {streaming}", flush=True)

    print("[emit_bench] elastic: routing A/B (sim) + live 2->3->2 "
          "rescale (multiprocess GoL)", flush=True)
    elastic = {
        "routing_ab": run_routing_ab(),
        "rescale": run_elastic_load(),
    }
    print(f"[emit_bench] elastic: {elastic}", flush=True)

    speedup = (modes["eventloop"]["tokens_per_sec"]
               / max(1e-9, modes["threads"]["tokens_per_sec"]))
    date = datetime.date.today().strftime("%Y%m%d")
    sha = _git_short_sha()
    doc = {
        "benchmark": "ring-small-token",
        "date": date,
        "sha": sha,
        "host": {
            "cpus": _usable_cpus(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "codec": fastpath.codec_in_use(),
            "codec_compiled": fastpath.compiled_available(),
        },
        "config": {
            "nodes": RING_NODES,
            "blocks": args.blocks,
            "block_bytes": args.block_bytes,
            "runs": args.runs,
            "reps": args.reps,
        },
        "modes": modes,
        "speedup_eventloop_vs_threads": round(speedup, 3),
        "codec": codec,
        "service_tier": service_tier,
        "streaming": streaming,
        "elastic": elastic,
    }
    out_path = os.path.join(args.out, f"BENCH_{date}_{sha}.json")
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    print(f"[emit_bench] eventloop/threads speedup {speedup:.2f}x "
          f"-> {out_path}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
