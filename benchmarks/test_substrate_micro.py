"""Micro-benchmarks of the substrates (real wall-clock performance).

These guard the usability of the reproduction itself: wire-format
throughput, simulation-kernel event rate, and end-to-end engine token
rate.  Thresholds are deliberately loose (CI machines vary); the
benchmark table is the real signal.
"""

import numpy as np

from repro.apps.strings import StringToken, build_uppercase_graph
from repro.cluster import paper_cluster
from repro.runtime import SimEngine
from repro.serial import Buffer, ComplexToken, decode, encode
from repro.simkernel import Simulator


class MicroToken(ComplexToken):
    def __init__(self, payload=None, seq=0):
        self.payload = Buffer(payload if payload is not None else [])
        self.seq = seq


def test_wire_encode_decode_throughput(benchmark):
    """Round-trip a 1 MB numpy payload through the wire format."""
    tok = MicroToken(np.random.default_rng(0).random(131_072), 7)  # 1 MiB

    def roundtrip():
        return decode(encode(tok))

    out = benchmark(roundtrip)
    assert out.seq == 7
    assert np.array_equal(out.payload.array, tok.payload.array)


def test_wire_small_token_rate(benchmark):
    """Encode+decode of small control-sized tokens."""
    tok = MicroToken(np.arange(4, dtype=np.int64), 1)

    def burst():
        for _ in range(1000):
            decode(encode(tok))

    benchmark(burst)


def test_simkernel_event_rate(benchmark):
    """Raw event throughput of the discrete-event kernel."""

    def run_events():
        sim = Simulator()

        def ping(sim, n):
            for _ in range(n):
                yield sim.timeout(1.0)

        for _ in range(10):
            sim.spawn(ping(sim, 1000))
        sim.run()
        return sim.now

    now = benchmark(run_events)
    assert now == 1000.0


def test_engine_token_rate(benchmark):
    """End-to-end schedule throughput: tokens through split>>leaf>>merge."""

    def run_schedule():
        engine = SimEngine(paper_cluster(3))
        graph, *_ = build_uppercase_graph("node01", "node02 node03")
        result = engine.run(graph, StringToken("a" * 300))
        return result.token.text

    text = benchmark.pedantic(run_schedule, rounds=3, iterations=1)
    assert text == "A" * 300
