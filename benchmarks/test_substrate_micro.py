"""Micro-benchmarks of the substrates (real wall-clock performance).

These guard the usability of the reproduction itself: wire-format
throughput, simulation-kernel event rate, and end-to-end engine token
rate.  Each test also asserts a hard wall-clock ceiling (~10x the
measured post-optimization times on a developer laptop) so a gross
regression fails CI outright; the benchmark table is the finer signal.
"""

import numpy as np

from repro.apps.strings import StringToken, build_uppercase_graph
from repro.cluster import paper_cluster
from repro.net import ConnectionPool
from repro.runtime import SimEngine
from repro.serial import Buffer, ComplexToken, decode, encode
from repro.simkernel import Simulator

# Hard ceilings in seconds on the *best* observed round.  Post-optimization
# best times are ~0.8 ms / 15 ms / 10 ms / 50 ms respectively; 10-20x slack
# absorbs slow shared CI machines while still catching order-of-magnitude
# regressions (e.g. the wire path silently falling back to per-field copies).
CEILING_WIRE_1MB = 0.020
CEILING_SMALL_BURST = 0.300
CEILING_EVENT_RATE = 0.150
CEILING_ENGINE_RATE = 0.800
CEILING_POOL_SEND_BURST = 0.100


def _best_seconds(benchmark):
    stats = getattr(benchmark, "stats", None)
    if stats is None:  # --benchmark-disable: nothing was timed
        return 0.0
    return stats.stats.min


class MicroToken(ComplexToken):
    def __init__(self, payload=None, seq=0):
        self.payload = Buffer(payload if payload is not None else [])
        self.seq = seq


def test_wire_encode_decode_throughput(benchmark):
    """Round-trip a 1 MB numpy payload through the wire format."""
    tok = MicroToken(np.random.default_rng(0).random(131_072), 7)  # 1 MiB

    def roundtrip():
        return decode(encode(tok))

    out = benchmark(roundtrip)
    assert out.seq == 7
    assert np.array_equal(out.payload.array, tok.payload.array)
    assert _best_seconds(benchmark) < CEILING_WIRE_1MB


def test_wire_small_token_rate(benchmark):
    """Encode+decode of small control-sized tokens."""
    tok = MicroToken(np.arange(4, dtype=np.int64), 1)

    def burst():
        for _ in range(1000):
            decode(encode(tok))

    benchmark(burst)
    assert _best_seconds(benchmark) < CEILING_SMALL_BURST


def test_simkernel_event_rate(benchmark):
    """Raw event throughput of the discrete-event kernel."""

    def run_events():
        sim = Simulator()

        def ping(sim, n):
            for _ in range(n):
                yield sim.timeout(1.0)

        for _ in range(10):
            sim.spawn(ping(sim, 1000))
        sim.run()
        return sim.now

    now = benchmark(run_events)
    assert now == 1000.0
    assert _best_seconds(benchmark) < CEILING_EVENT_RATE


def test_engine_token_rate(benchmark):
    """End-to-end schedule throughput: tokens through split>>leaf>>merge."""

    def run_schedule():
        engine = SimEngine(paper_cluster(3))
        graph, *_ = build_uppercase_graph("node01", "node02 node03")
        result = engine.run(graph, StringToken("a" * 300))
        return result.token.text

    text = benchmark.pedantic(run_schedule, rounds=3, iterations=1)
    assert text == "A" * 300
    assert _best_seconds(benchmark) < CEILING_ENGINE_RATE


def test_pool_send_hot_path_rate(benchmark):
    """``ConnectionPool.send`` to an already-dialed peer: a lock-free dict
    probe plus an outbox append.  PR 2 paid a lock acquire/release per
    token here; this pins the fixed cost down."""

    class NullConn:
        sent = 0

        def send(self, segments):
            NullConn.sent += 1

        def close(self, flush_timeout=5.0):
            pass

    pool = ConnectionPool(None, hello_from="bench",
                          on_error=lambda peer, exc: None)
    pool._peers["peer"] = NullConn()
    payload = [bytearray(b"x" * 64)]

    def burst():
        send = pool.send
        for _ in range(10_000):
            send("peer", payload)

    benchmark(burst)
    assert NullConn.sent >= 10_000
    assert _best_seconds(benchmark) < CEILING_POOL_SEND_BURST
