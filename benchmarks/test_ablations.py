"""Ablation benchmarks for the design decisions called out in DESIGN.md §5.

- flow-control window sweep (decision 2): window=1 degenerates to
  lock-step; widening it buys overlap up to a saturation point;
- load-balanced vs round-robin routing on a heterogeneous cluster
  (decision 5): the feedback-driven route shifts work to faster nodes;
- stream vs merge+split barrier in the video pipeline (decision 3,
  qualitative Figure 4 companion to the LU comparison of Figure 15);
- zero-copy local delivery vs loopback vs physical wire (decision 4).
"""

import numpy as np

from repro.apps.matmul import block_multiply
from repro.apps.video import VideoJob, run_video_pipeline
from repro.cluster import ClusterSpec, NetworkSpec, NodeSpec, paper_cluster
from repro.core import (
    ConstantRoute,
    DpsThread,
    FlowControlPolicy,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    LoadBalancedRoute,
    MergeOperation,
    RoundRobinRoute,
    SplitOperation,
    ThreadCollection,
)
from repro.runtime import SimEngine
from repro.serial import SimpleToken


# ---------------------------------------------------------------------------
# ablation 1: flow-control window
# ---------------------------------------------------------------------------

def _matmul_time(window):
    rng = np.random.default_rng(5)
    n = 256
    a, b = rng.standard_normal((n, n)), rng.standard_normal((n, n))
    run = block_multiply(paper_cluster(3, flops=220e6), a, b, s=8,
                         n_workers=2, window=window)
    return run.makespan


def test_ablation_flow_control_window(benchmark):
    def sweep():
        return {w: _matmul_time(w) for w in (2, 4, 8, 16, 32)}

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # window = workers (2) is the lock-step baseline: slowest
    assert times[2] == max(times.values())
    # widening the window monotonically helps (to saturation)
    assert times[4] <= times[2]
    assert times[8] <= times[4]
    # saturation: beyond ~4 tasks/worker there is little left to win
    assert times[32] > 0.9 * times[16]
    print()
    print("window -> makespan [s]:",
          {w: round(t, 3) for w, t in times.items()})


# ---------------------------------------------------------------------------
# ablation 2: load-balanced vs round-robin routing (heterogeneous nodes)
# ---------------------------------------------------------------------------

class AJob(SimpleToken):
    def __init__(self, n=0):
        self.n = n


class AItem(SimpleToken):
    def __init__(self, v=0):
        self.v = v


class AMain(DpsThread):
    pass


class AWork(DpsThread):
    pass


class AFan(SplitOperation):
    thread_type = AMain
    in_types = (AJob,)
    out_types = (AItem,)

    def execute(self, tok):
        for i in range(tok.n):
            self.post(AItem(i))


class AWorkOp(LeafOperation):
    thread_type = AWork
    in_types = (AItem,)
    out_types = (AItem,)

    def execute(self, tok):
        yield self.charge_flops(2e6)  # fixed work per item
        yield self.post(AItem(tok.v))


class ASink(MergeOperation):
    thread_type = AMain
    in_types = (AItem,)
    out_types = (AJob,)

    def execute(self, tok):
        count = 0
        while tok is not None:
            count += 1
            tok = yield self.next_token()
        yield self.post(AJob(count))


def _heterogeneous_run(route_class):
    # node02 is 4x faster than node03: round-robin leaves it idle half
    # the time, the ack-feedback route keeps it busy.
    spec = ClusterSpec(
        nodes=(
            NodeSpec("node01", cpus=2, flops=100e6),
            NodeSpec("node02", cpus=1, flops=400e6),
            NodeSpec("node03", cpus=1, flops=100e6),
        ),
        network=NetworkSpec(),
    )
    engine = SimEngine(spec, policy=FlowControlPolicy(window=4))
    main = ThreadCollection(AMain, "a-main").map("node01")
    workers = ThreadCollection(AWork, "a-work").map("node02 node03")
    g = Flowgraph(
        FlowgraphNode(AFan, main)
        >> FlowgraphNode(AWorkOp, workers, route_class)
        >> FlowgraphNode(ASink, main),
        f"ablation-{route_class.__name__}",
    )
    result = engine.run(g, AJob(60))
    assert result.token.n == 60
    return result.makespan


def test_ablation_load_balanced_routing(benchmark):
    def compare():
        return (_heterogeneous_run(RoundRobinRoute),
                _heterogeneous_run(LoadBalancedRoute))

    t_rr, t_lb = benchmark.pedantic(compare, rounds=1, iterations=1)
    # the feedback route must beat blind round-robin on skewed nodes
    assert t_lb < t_rr
    assert t_rr / t_lb > 1.25
    print()
    print(f"round-robin {t_rr:.3f} s vs load-balanced {t_lb:.3f} s "
          f"({t_rr / t_lb:.2f}x)")


# ---------------------------------------------------------------------------
# ablation 3: stream vs merge+split barrier (Figure 4 pipeline)
# ---------------------------------------------------------------------------

def test_ablation_stream_vs_barrier_video(benchmark):
    spec = paper_cluster(6)
    disks = ["node01", "node02", "node03", "node04"]
    procs = ["node05", "node06"]
    job = VideoJob(n_frames=12, frame_bytes=1 << 18, n_parts=4)

    def compare():
        a = run_video_pipeline(spec, job, disks, procs, use_stream=True)
        b = run_video_pipeline(spec, job, disks, procs, use_stream=False)
        return a, b

    stream, barrier = benchmark.pedantic(compare, rounds=1, iterations=1)
    assert stream.checksum == barrier.checksum
    assert stream.makespan < barrier.makespan
    assert stream.first_frame_latency < barrier.first_frame_latency
    print()
    print(f"stream: makespan {stream.makespan:.3f} s, first frame "
          f"{stream.first_frame_latency * 1e3:.1f} ms; barrier: "
          f"{barrier.makespan:.3f} s / "
          f"{barrier.first_frame_latency * 1e3:.1f} ms")


# ---------------------------------------------------------------------------
# ablation 4: zero-copy local delivery vs loopback vs physical wire
# ---------------------------------------------------------------------------

def test_ablation_local_delivery(benchmark):
    """DESIGN.md decision 4: same-kernel tokens are pointer passes; the
    paper's multi-kernel-per-host debugging pays loopback + full
    serialization; separate machines pay the physical wire."""
    from repro.apps.strings import StringToken, build_uppercase_graph
    from repro.runtime.kernel import KernelEnvironment, KernelSpec

    def run_layout(kernels, worker_mapping):
        env = KernelEnvironment(kernels)
        graph, *_ = build_uppercase_graph(kernels[0].name, worker_mapping)
        env.engine.register_graph(graph)
        env.engine.prelaunch()
        return env.engine.run(graph, StringToken("y" * 120)).makespan

    def sweep():
        same_kernel = run_layout([KernelSpec("k1", host="pc")], "k1*2")
        debug = run_layout(
            [KernelSpec("k1", host="pc"), KernelSpec("k2", host="pc")],
            "k2*2",
        )
        wire = run_layout(
            [KernelSpec("k1", host="pc1"), KernelSpec("k2", host="pc2")],
            "k2*2",
        )
        return same_kernel, debug, wire

    same_kernel, debug, wire = benchmark.pedantic(sweep, rounds=1,
                                                  iterations=1)
    assert same_kernel < debug < wire
    assert wire / same_kernel > 5  # pointer passes are dramatically cheaper
    print()
    print(f"same kernel {same_kernel * 1e3:7.2f} ms | debug kernels "
          f"{debug * 1e3:7.2f} ms | physical wire {wire * 1e3:7.2f} ms")
