"""A/B benchmark for the batched transport (ISSUE 4).

Runs the ring demo on the multiprocess engine twice — once with the
default :class:`~repro.net.TransportPolicy` (outbox coalescing, ack
aggregation, shared-memory lane) and once with
``TransportPolicy.unbatched()`` (the PR 2 frame-at-a-time wire path) —
and asserts the batched path moves small tokens at least 25% faster.
The comparison needs real parallelism to be meaningful (four kernel
processes plus a console), so it is skipped below 4 usable cores; the
frames-per-syscall amortization check runs everywhere.
"""

import os
import time

import pytest

from repro.apps.ring import RingJobToken, build_ring_graph
from repro.net import TransportPolicy
from repro.runtime import MultiprocessEngine
from repro.trace import MetricsRegistry

RING_NODES = ["node01", "node02", "node03", "node04"]
SMALL_BLOCK_BYTES = 512  # syscall-bound, not bandwidth-bound
SMALL_BLOCKS = 400


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _ring_tokens_per_sec(transport, blocks=SMALL_BLOCKS,
                         block_bytes=SMALL_BLOCK_BYTES,
                         metrics=None) -> float:
    with MultiprocessEngine(transport=transport, metrics=metrics) as engine:
        graph = build_ring_graph(RING_NODES)
        engine.register_graph(graph)
        # warm-up: cluster fork / lazy dials / shm attach
        engine.run(graph, RingJobToken(block_bytes, 4), timeout=120)
        t0 = time.perf_counter()
        done = engine.run(graph, RingJobToken(block_bytes, blocks),
                          timeout=120)
        elapsed = time.perf_counter() - t0
        assert done.blocks == blocks
    return blocks / elapsed


@pytest.mark.skipif(_usable_cpus() < 4,
                    reason="A/B throughput comparison needs >= 4 cores")
def test_batched_transport_small_token_speedup(capsys):
    """Default (batched) transport vs the frame-at-a-time baseline on a
    small-token ring: >= 25% more tokens/sec (the ISSUE 4 target)."""
    baseline = _ring_tokens_per_sec(TransportPolicy.unbatched())
    batched = _ring_tokens_per_sec(None)  # engine default policy
    speedup = batched / baseline
    with capsys.disabled():
        print(
            f"\n[transport-batching] ring {SMALL_BLOCK_BYTES} B blocks: "
            f"unbatched {baseline:,.0f} tok/s, batched {batched:,.0f} tok/s "
            f"({speedup:.2f}x)"
        )
    assert speedup >= 1.25, (
        f"batched transport only {speedup:.2f}x over frame-at-a-time "
        f"(need >= 1.25x)")


def test_frames_per_syscall_amortizes_under_load(capsys):
    """Under a burst of small tokens the writer must pack more than one
    frame per sendmsg on average — the core coalescing claim, checkable
    even on a single core."""
    metrics = MetricsRegistry()
    _ring_tokens_per_sec(TransportPolicy(shm_enabled=False), blocks=200,
                         block_bytes=256, metrics=metrics)
    hist = metrics.histogram("frames_per_syscall")
    assert hist.count > 0, "no flushes recorded"
    with capsys.disabled():
        print(
            f"\n[transport-batching] frames/syscall: mean {hist.mean:.2f} "
            f"(n={hist.count}, max {hist.max:.0f})"
        )
    assert hist.mean > 1.0, (
        f"coalescing is not amortizing syscalls (mean {hist.mean:.2f})")


def test_unbatched_policy_really_is_frame_at_a_time():
    """The A/B baseline must measure what it claims: exactly one frame
    per syscall when batching is off."""
    metrics = MetricsRegistry()
    _ring_tokens_per_sec(TransportPolicy.unbatched(), blocks=50,
                         block_bytes=256, metrics=metrics)
    hist = metrics.histogram("frames_per_syscall")
    assert hist.count > 0
    assert hist.max == 1.0
