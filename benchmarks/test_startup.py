"""Benchmark of the lazy application-launch behaviour (paper §4).

"This strategy minimizes resource consumption and enables dynamic
mapping of threads to processing nodes at runtime.  However, this
approach requires a slightly longer startup time (e.g. one second on an
8 node system)."

The first activation of a graph spanning N nodes pays each node's
application-launch delay as tokens first reach it; subsequent
activations run at steady state.
"""

from repro.apps.strings import StringToken, build_uppercase_graph
from repro.cluster import paper_cluster
from repro.runtime import SimEngine


def _startup_overhead(n_nodes: int) -> tuple:
    engine = SimEngine(paper_cluster(n_nodes))
    workers = " ".join(f"node{i:02d}" for i in range(1, n_nodes + 1))
    graph, *_ = build_uppercase_graph("node01", workers)
    cold = engine.run(graph, StringToken("x" * n_nodes)).makespan
    warm = engine.run(graph, StringToken("x" * n_nodes)).makespan
    return cold, warm


def test_lazy_startup_cost(benchmark):
    def sweep():
        return {n: _startup_overhead(n) for n in (1, 2, 4, 8)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    overheads = {n: cold - warm for n, (cold, warm) in results.items()}
    # startup overhead grows with node count ...
    assert overheads[8] > overheads[4] > overheads[1]
    # ... and lands in the paper's ballpark: ~1 s for the 8-node system
    assert 0.3 < results[8][0] < 3.0
    # warm runs are milliseconds, not seconds
    assert results[8][1] < 0.1
    print()
    for n, (cold, warm) in results.items():
        print(f"{n} nodes: first activation {cold * 1e3:7.1f} ms, "
              f"steady state {warm * 1e3:6.2f} ms")
