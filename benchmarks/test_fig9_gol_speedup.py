"""Benchmark regenerating Figure 9: Game of Life speedups.

Paper claim: the improved flow graph (border exchange overlapped with the
center computation) outperforms the standard one everywhere; the gap is
most pronounced for the smallest world; large worlds scale near-linearly.
"""

from repro.experiments import fig9_gol_speedup


def _check_shape(result):
    speedups = result.data["speedups"]
    worlds = sorted({w for (w, _, _) in speedups})
    nodes = sorted({p for (_, _, p) in speedups})
    top = nodes[-1]
    for w in worlds:
        for p in nodes:
            imp = speedups[(w, "imp", p)]
            std = speedups[(w, "std", p)]
            # improved graph is never slower (tiny tolerance at p=1
            # where the two graphs coincide)
            assert imp >= std * 0.99, (w, p, imp, std)
    # gap at the largest node count shrinks as the world grows
    gaps = [speedups[(w, "imp", top)] / speedups[(w, "std", top)]
            for w in worlds]
    cells = [eval(w.replace("x", "*")) for w in worlds]
    ordered = [g for _, g in sorted(zip(cells, gaps))]
    assert ordered[0] >= ordered[-1], (worlds, gaps)
    # the biggest world scales well
    biggest = max(worlds, key=lambda w: eval(w.replace("x", "*")))
    assert speedups[(biggest, "imp", top)] > 0.8 * top


def test_fig9_gol_speedup(benchmark, full_scale):
    result = benchmark.pedantic(
        lambda: fig9_gol_speedup.run(fast=not full_scale),
        rounds=1, iterations=1,
    )
    _check_shape(result)
    print()
    print(result.report())
