"""Elasticity benchmarks: adaptive routing A/B and live rescale cost.

Two publishable measurements (both feed the ``elastic`` section of the
committed ``BENCH_*.json`` via ``emit_bench.py``):

- :func:`run_routing_ab` — a **deterministic** A/B of round-robin vs
  queue-depth adaptive split routing on the simulated engine.  The
  workload is deliberately skewed: two leaf instances, one on a fast
  node and one 8x slower.  Round-robin feeds them 50/50 so the slow
  node's queue sets the makespan; queue-depth routing observes the
  backlog and shifts work to the fast node.  Virtual time makes the
  comparison exact and reproducible.
- :func:`run_elastic_load` — the multiprocess engine under a real
  workload (the Game of Life band world) while the cluster scales
  2 -> 3 -> 2 kernels mid-run: steps/sec before, during and after the
  scale events, rebalance latency, and thread instances moved —
  with the result still bit-identical to a static run.
"""

import time

import numpy as np

from repro.apps.gameoflife import DistributedGameOfLife, life_step
from repro.cluster import ClusterSpec, NetworkSpec, NodeSpec
from repro.core import (
    DpsThread,
    Flowgraph,
    FlowgraphNode,
    LeafOperation,
    MergeOperation,
    RoundRobinRoute,
    RoutingPolicy,
    SplitOperation,
    ThreadCollection,
)
from repro.runtime import MultiprocessEngine, SimEngine
from repro.serial import SimpleToken

# ---------------------------------------------------------------------------
# skewed-load sim workload (shared with emit_bench.py)
# ---------------------------------------------------------------------------

#: One fast and one 8x slower node: the round-robin worst case.
SKEW_FLOPS = (80e6, 10e6)
SKEW_TOKENS = 64
SKEW_WORK_FLOPS = 200_000.0


class SkewJob(SimpleToken):
    def __init__(self, count: int = 0):
        self.count = count


class SkewItem(SimpleToken):
    def __init__(self, seq: int = 0):
        self.seq = seq


class SkewMaster(DpsThread):
    pass


class SkewWorker(DpsThread):
    pass


class SkewSplit(SplitOperation):
    thread_type = SkewMaster
    in_types = (SkewJob,)
    out_types = (SkewItem,)

    def execute(self, tok):
        for i in range(tok.count):
            self.post(SkewItem(i))


class SkewLeaf(LeafOperation):
    thread_type = SkewWorker
    in_types = (SkewItem,)
    out_types = (SkewItem,)

    def execute(self, tok):
        self.post(SkewItem(tok.seq))

    def cost(self, tok):
        return self.charge_flops(SKEW_WORK_FLOPS)


class SkewMerge(MergeOperation):
    thread_type = SkewMaster
    in_types = (SkewItem,)
    out_types = (SkewJob,)

    def execute(self, tok):
        n = 0
        while tok is not None:
            n += 1
            tok = yield self.next_token()
        yield self.post(SkewJob(n))


def _skew_cluster() -> ClusterSpec:
    return ClusterSpec(
        nodes=tuple(
            NodeSpec(name=f"node{i + 1:02d}", cpus=1, flops=flops)
            for i, flops in enumerate(SKEW_FLOPS)
        ),
        network=NetworkSpec(),
    )


def _skew_graph() -> Flowgraph:
    master = ThreadCollection(SkewMaster, "skew-master").map("node01")
    workers = ThreadCollection(SkewWorker, "skew-work").map("node01 node02")
    builder = (
        FlowgraphNode(SkewSplit, master)
        >> FlowgraphNode(SkewLeaf, workers, RoundRobinRoute)
        >> FlowgraphNode(SkewMerge, master)
    )
    return Flowgraph(builder, "skew")


def _run_skew(kind: str, tokens: int = SKEW_TOKENS) -> dict:
    engine = SimEngine(_skew_cluster(), routing=RoutingPolicy(kind=kind))
    graph = _skew_graph()
    engine.register_graph(graph)
    result = engine.run(graph, SkewJob(tokens))
    assert result.token.count == tokens
    return {
        "virtual_seconds": round(result.makespan, 6),
        "tokens_per_sec": round(tokens / result.makespan, 1),
    }


def run_routing_ab(tokens: int = SKEW_TOKENS) -> dict:
    """Deterministic round-robin vs queue-depth A/B; same graph, same
    cluster, same token count — only the routing policy differs."""
    rr = _run_skew("round_robin", tokens)
    qd = _run_skew("queue_depth", tokens)
    return {
        "workload": f"skewed 2-node sim, {tokens} tokens, "
                    f"{SKEW_FLOPS[0] / SKEW_FLOPS[1]:.0f}x speed skew",
        "round_robin": rr,
        "queue_depth": qd,
        "speedup_queue_depth_vs_round_robin": round(
            qd["tokens_per_sec"] / rr["tokens_per_sec"], 3),
    }


# ---------------------------------------------------------------------------
# multiprocess elastic load harness (shared with emit_bench.py)
# ---------------------------------------------------------------------------

def _gol_world():
    return (np.random.RandomState(7).rand(32, 24) < 0.35).astype(np.uint8)


def run_elastic_load(steps_per_phase: int = 3) -> dict:
    """Scale a live Game of Life cluster 2 -> 3 -> 2 kernels mid-run.

    Returns steps/sec per phase, rebalance latency/moves, and whether
    the final world matched the single-process reference bit for bit.
    """
    total_steps = 3 * steps_per_phase
    ref = _gol_world()
    for _ in range(total_steps):
        ref = life_step(ref)

    with MultiprocessEngine(startup_timeout=60) as engine:
        game = DistributedGameOfLife(engine, _gol_world(),
                                     ["node01", "node02"],
                                     compute_nodes=["node05"])
        game.load()

        def phase(n):
            t0 = time.perf_counter()
            for _ in range(n):
                game.step(improved=True)
            return n / (time.perf_counter() - t0)

        before = phase(steps_per_phase)
        t_scale = time.perf_counter()
        joiner = engine.add_kernel()
        during = phase(steps_per_phase)
        engine.retire_kernel(joiner)
        scale_window = time.perf_counter() - t_scale
        after = phase(steps_per_phase)
        out = game.gather()
        snap = engine._console.rebalance_snapshot()
        rebalances, tokens_moved, rebalance_seconds = snap
    return {
        "workload": f"GoL 32x24, 2 workers + compute kernel, "
                    f"{steps_per_phase} steps/phase",
        "steps_per_sec": {
            "before": round(before, 2),
            "during": round(during, 2),
            "after": round(after, 2),
        },
        "rebalances": rebalances,
        "tokens_moved": tokens_moved,
        "rebalance_latency_s": round(rebalance_seconds / max(1, rebalances),
                                     4),
        "scale_window_s": round(scale_window, 3),
        "bit_identical": bool((out == ref).all()),
    }


# ---------------------------------------------------------------------------
# assertions (benchmarks double as regression tests)
# ---------------------------------------------------------------------------

def test_queue_depth_beats_round_robin_on_skewed_load():
    """The tentpole routing claim, asserted deterministically: adaptive
    routing must beat round-robin tok/s on the skewed workload."""
    ab = run_routing_ab()
    assert ab["queue_depth"]["tokens_per_sec"] > \
        ab["round_robin"]["tokens_per_sec"]
    # The skew is 8x; adaptive routing should recover a solid chunk of
    # it, not a rounding error.
    assert ab["speedup_queue_depth_vs_round_robin"] >= 1.2


def test_routing_ab_is_deterministic():
    first = run_routing_ab()
    second = run_routing_ab()
    assert first == second


def test_elastic_load_keeps_results_bit_identical():
    report = run_elastic_load(steps_per_phase=2)
    assert report["bit_identical"]
    assert report["rebalances"] == 2
    assert report["tokens_moved"] >= 2
