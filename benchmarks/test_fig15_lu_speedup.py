"""Benchmark regenerating Figure 15: LU speedup, pipelined vs barrier.

Paper claim: the fully pipelined graph (stream operations) clearly beats
the variant with merge+split barriers, with the gap growing with node
count; the pipelined variant reaches a speedup of ~6-7 on 8 nodes.
"""

from repro.experiments import fig15_lu_speedup


def _check_shape(result):
    speedups = result.data["speedups"]
    nodes = sorted({p for (_, p) in speedups})
    # pipelined >= barrier everywhere
    for p in nodes:
        assert speedups[("pipelined", p)] >= speedups[("non-pipelined", p)]
    # the gap grows with node count
    first, last = nodes[0], nodes[-1]
    gap_first = speedups[("pipelined", first)] / speedups[("non-pipelined", first)]
    gap_last = speedups[("pipelined", last)] / speedups[("non-pipelined", last)]
    assert gap_last > gap_first
    # decent absolute scaling of the pipelined variant
    assert speedups[("pipelined", last)] > 0.55 * last
    # both curves increase monotonically with nodes
    for variant in ("pipelined", "non-pipelined"):
        seq = [speedups[(variant, p)] for p in nodes]
        assert all(b > a for a, b in zip(seq, seq[1:])), (variant, seq)


def test_fig15_lu_speedup(benchmark, full_scale):
    result = benchmark.pedantic(
        lambda: fig15_lu_speedup.run(fast=not full_scale),
        rounds=1, iterations=1,
    )
    _check_shape(result)
    print()
    print(result.report())
