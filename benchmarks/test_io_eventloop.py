"""A/B benchmark for the event-loop I/O core (ISSUE 6).

Compares the two ``TransportPolicy.io_mode`` flavours on the small-token
ring: one ``selectors`` event loop per kernel versus the per-peer writer
/ per-connection reader threads fallback.  The ≥15% eventloop win needs
real parallelism — on a single shared core all five processes serialize
on the CPU and the threads fallback's *lazy* batching (writer threads
that wake late and slurp ~8 frames per syscall) edges ahead instead, as
the committed ``BENCH_*.json`` trajectory from such boxes records — so
the speedup assert gates on ≥4 usable cores.  The ungated tests pin the
structural properties that hold on any box: the loop actually carries
the traffic (wakeup and coalescing counters move), the thread census
per kernel shrinks, and the ``emit_bench`` harness emits a well-formed
snapshot.
"""

import json
import os
import statistics
import threading
import time

import pytest

from repro.apps.ring import RingJobToken, build_ring_graph
from repro.net import TransportPolicy
from repro.runtime import MultiprocessEngine
from repro.trace import MetricsRegistry

RING_NODES = ["node01", "node02", "node03", "node04"]
SMALL_BLOCK_BYTES = 512  # syscall-bound, not bandwidth-bound
SMALL_BLOCKS = 300


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _ring_rates(io_mode, *, runs=3, blocks=SMALL_BLOCKS,
                block_bytes=SMALL_BLOCK_BYTES, metrics=None):
    """One engine lifetime; per-run tokens/sec for *runs* timed rings."""
    transport = TransportPolicy(io_mode=io_mode)
    rates = []
    with MultiprocessEngine(transport=transport, metrics=metrics) as engine:
        graph = build_ring_graph(RING_NODES)
        engine.register_graph(graph)
        # warm-up: cluster fork / lazy dials / shm attach
        engine.run(graph, RingJobToken(block_bytes, 4), timeout=120)
        for _ in range(runs):
            t0 = time.perf_counter()
            done = engine.run(graph, RingJobToken(block_bytes, blocks),
                              timeout=120)
            elapsed = time.perf_counter() - t0
            assert done.blocks == blocks
            rates.append(blocks / elapsed)
        census = len(threading.enumerate())
    return rates, census


@pytest.mark.skipif(_usable_cpus() < 4,
                    reason="A/B throughput comparison needs >= 4 cores")
def test_eventloop_beats_threads_on_small_tokens(capsys):
    """Small-token ring, eventloop vs threads: >= 15% more tokens/sec
    (the ISSUE 6 target).  Lifetimes are interleaved and pooled so box
    drift lands on both modes symmetrically."""
    pooled = {"eventloop": [], "threads": []}
    for _ in range(2):
        for io_mode in ("eventloop", "threads"):
            rates, _ = _ring_rates(io_mode)
            pooled[io_mode].extend(rates)
    ev = statistics.median(pooled["eventloop"])
    th = statistics.median(pooled["threads"])
    speedup = ev / th
    with capsys.disabled():
        print(f"\n[io-eventloop] ring {SMALL_BLOCK_BYTES} B blocks: "
              f"threads {th:,.0f} tok/s, eventloop {ev:,.0f} tok/s "
              f"({speedup:.2f}x)")
    assert speedup >= 1.15, (
        f"eventloop only {speedup:.2f}x over writer/reader threads "
        f"(need >= 1.15x)")


def test_eventloop_thread_census_is_smaller(capsys):
    """The whole point of the single loop: strictly fewer live threads
    per kernel than the writer/reader-thread fallback, same traffic."""
    _, census_ev = _ring_rates("eventloop", runs=1, blocks=50)
    _, census_th = _ring_rates("threads", runs=1, blocks=50)
    with capsys.disabled():
        print(f"\n[io-eventloop] console thread census: "
              f"eventloop {census_ev}, threads {census_th}")
    assert census_ev < census_th, (
        f"eventloop census {census_ev} not below threads {census_th}")


def test_loop_carries_traffic_and_counters_move():
    """Under eventloop the loop-health counters must actually move:
    passes are counted and sends still coalesce (>1 frame/syscall)."""
    metrics = MetricsRegistry()
    _ring_rates("eventloop", runs=1, blocks=200, block_bytes=256,
                metrics=metrics)
    counters = metrics.snapshot()["counters"]
    assert counters.get("io_loop_wakeups", 0) > 0, "loop never ticked"
    hist = metrics.histogram("frames_per_syscall")
    assert hist.count > 0, "no flushes recorded"
    assert hist.mean > 1.0, (
        f"eventloop pump is not coalescing (mean {hist.mean:.2f})")


def test_emit_bench_writes_wellformed_snapshot(tmp_path):
    """The published-trajectory harness end to end, at toy scale: one
    ``BENCH_<date>_<sha>.json`` with both modes and a finite speedup."""
    from benchmarks import emit_bench

    rc = emit_bench.main(["--blocks", "24", "--block-bytes", "128",
                          "--runs", "1", "--reps", "1",
                          "--out", str(tmp_path)])
    assert rc == 0
    files = list(tmp_path.glob("BENCH_*.json"))
    assert len(files) == 1
    doc = json.loads(files[0].read_text())
    assert set(doc["modes"]) == {"eventloop", "threads"}
    for mode in doc["modes"].values():
        assert mode["tokens_per_sec"] > 0
        assert mode["latency_us_p99"] >= mode["latency_us_p50"]
    assert doc["speedup_eventloop_vs_threads"] > 0
    assert doc["modes"]["eventloop"]["io_loop_wakeups"] > 0
    assert doc["modes"]["threads"]["io_loop_wakeups"] == 0
