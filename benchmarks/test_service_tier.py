"""Load harness for the resident service tier (paper §"Parallel services").

``run_load`` boots a resident Game of Life service and hammers it with
``n_clients`` *external client processes* (fork-spawned, each holding
its own :class:`~repro.service.ServiceClient` session over TCP):

- phase A, overload: every client releases a burst of ``burst`` async
  calls from a shared barrier — deliberately more in-flight requests
  than the admission policy's capacity, so the console must shed with
  ``MSG_SVC_BUSY`` and clients must retry (new request ids, backoff);
- phase B, throughput: each client issues ``n_calls`` sequential reads.

Every reply is verified bit-for-bit against the fork-inherited world,
so the published numbers certify *correct* requests per second, not
just bytes moved.  ``emit_bench.py`` imports ``run_load`` to publish a
``service_tier`` section (p50/p99 latency, requests/sec, shed count)
into the committed ``BENCH_*.json``.

The pytest wrapper keeps the default load small enough for the tier-1
suite on a shared box; rates are reported, only correctness and the
shed/retry behaviour are asserted.
"""

import multiprocessing
import time

import numpy as np

from repro.apps.gol_service import GameOfLifeService, GolReadRequest
from repro.service import AdmissionPolicy, ServiceClient, ServiceEngine

WORLD_SHAPE = (48, 48)
WORLD_SEED = 20260808
GOL_NODES = ["node01", "node02"]
BLOCK = 8  # every read is a BLOCK x BLOCK region


def _make_world():
    rng = np.random.RandomState(WORLD_SEED)
    return (rng.rand(*WORLD_SHAPE) < 0.35).astype(np.uint8)


def _block_origin(client_idx, call_idx):
    """Deterministic per-call block placement, distinct across clients."""
    limit_r = WORLD_SHAPE[0] - BLOCK
    limit_c = WORLD_SHAPE[1] - BLOCK
    return ((client_idx * 7 + call_idx * 5) % limit_r,
            (client_idx * 11 + call_idx * 3) % limit_c)


def _client_proc(address, idx, burst, n_calls, barrier, world, out):
    """One external client process; self-verifies every reply."""
    try:
        latencies, wrong, ok = [], 0, 0
        with ServiceClient(address, name=f"load-client-{idx}") as client:
            client.open()
            barrier.wait(timeout=60)

            def verify(call_idx, array):
                row, col = _block_origin(idx, call_idx)
                return np.array_equal(
                    array, world[row:row + BLOCK, col:col + BLOCK])

            # phase A: synchronized burst far beyond server capacity
            t0 = time.perf_counter()
            pending = []
            for j in range(burst):
                row, col = _block_origin(idx, j)
                pending.append((j, client.call_async(
                    "gol.read", GolReadRequest(row, col, BLOCK, BLOCK))))
            for j, call in pending:
                try:
                    token = call.result(timeout=120)
                except Exception:
                    row, col = _block_origin(idx, j)
                    token = client.call(  # shed: retry under a new id
                        "gol.read", GolReadRequest(row, col, BLOCK, BLOCK),
                        timeout=120, retries=200, backoff=0.01)
                latencies.append(time.perf_counter() - t0)
                ok += 1
                if not verify(j, token.data.array):
                    wrong += 1

            # phase B: sequential reads, per-call latency
            for j in range(burst, burst + n_calls):
                row, col = _block_origin(idx, j)
                t0 = time.perf_counter()
                token = client.call(
                    "gol.read", GolReadRequest(row, col, BLOCK, BLOCK),
                    timeout=120, retries=200, backoff=0.01)
                latencies.append(time.perf_counter() - t0)
                ok += 1
                if not verify(j, token.data.array):
                    wrong += 1
            retries = client.busy_retries + client.failure_retries
        out.put((idx, "ok", ok, wrong, retries, latencies))
    except Exception as exc:  # pragma: no cover - harness failure path
        out.put((idx, f"error: {exc!r}", 0, 0, 0, []))


def run_load(n_clients=8, burst=4, n_calls=6,
             admission=AdmissionPolicy(max_concurrent=2, max_queue=2,
                                       session_window=8),
             faults=None, recover=None):
    """Boot the service, run the two-phase client load, return a report."""
    from repro.trace import MetricsRegistry

    world = _make_world()
    metrics = MetricsRegistry()
    engine = ServiceEngine(admission=admission, metrics=metrics,
                           faults=faults, recover=recover)
    gol = GameOfLifeService(engine, world, GOL_NODES)
    engine.expose(gol.read_graph, "gol.read")
    address = engine.serve()
    gol.load()

    ctx = multiprocessing.get_context("fork")
    out = ctx.Queue()
    barrier = ctx.Barrier(n_clients)
    procs = [ctx.Process(target=_client_proc,
                         args=(address, i, burst, n_calls, barrier,
                               world, out))
             for i in range(n_clients)]
    t0 = time.perf_counter()
    try:
        for p in procs:
            p.start()
        reports = [out.get(timeout=300) for _ in procs]
        for p in procs:
            p.join(timeout=30)
        elapsed = time.perf_counter() - t0

        errors = [s for _, s, *_ in reports if s != "ok"]
        ok = sum(r[2] for r in reports)
        wrong = sum(r[3] for r in reports)
        retries = sum(r[4] for r in reports)
        latencies = sorted(lat for r in reports for lat in r[5])

        def pct(values, q):
            if not values:
                return 0.0
            idx = min(len(values) - 1, max(0, round(q * (len(values) - 1))))
            return values[idx]

        recovered, replayed = engine.recovery_snapshot()
        counters = metrics.snapshot().get("counters", {})
        drained = engine.drain(timeout=60)
        return {
            "clients": n_clients,
            "calls_ok": ok,
            "calls_expected": n_clients * (burst + n_calls),
            "incorrect": wrong,
            "errors": errors,
            "shed": counters.get("svc_shed", 0),
            "duplicates": counters.get("svc_duplicates", 0),
            "client_retries": retries,
            "requests_per_sec": round(ok / elapsed, 1) if elapsed else 0.0,
            "latency_ms_p50": round(pct(latencies, 0.50) * 1e3, 2),
            "latency_ms_p99": round(pct(latencies, 0.99) * 1e3, 2),
            "recovered": recovered,
            "replayed_tokens": replayed,
            "drained": drained,
        }
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
        engine.shutdown()


def test_service_tier_load():
    report = run_load()
    print()
    print(f"[service-tier] {report}")
    assert not report["errors"], report["errors"]
    assert report["clients"] >= 8
    assert report["calls_ok"] == report["calls_expected"]
    assert report["incorrect"] == 0
    # the synchronized burst (8 clients x 4 calls vs capacity 4) must
    # overload admission: sheds answered BUSY, clients retried through
    assert report["shed"] > 0
    assert report["client_retries"] > 0
    assert report["drained"] is True
