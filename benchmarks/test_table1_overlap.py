"""Benchmark regenerating Table 1: overlap reductions in block matmul.

Paper claim: reductions of 6.7%-35.6%; the best reductions (25-35%)
occur at communication/computation ratios between 0.9 and 2.5, falling
off on both sides; the ratio grows with node count and splitting factor.
"""

from repro.experiments import table1_overlap


def _check_shape(result):
    reductions = result.data["reductions"]
    ratios = result.data["ratios"]
    # every configuration benefits from overlap
    assert all(r > 0 for r in reductions.values())
    # reductions peak in the ratio band ~0.9-2.5 (paper's observation)
    best_cfg = max(reductions, key=reductions.get)
    assert 0.5 <= ratios[best_cfg] <= 2.5
    # at very high ratios (>= 3) the reduction falls below the peak
    peak = reductions[best_cfg]
    high_ratio_cfgs = [cfg for cfg, r in ratios.items() if r > 3.0]
    if high_ratio_cfgs:
        assert all(reductions[c] < 0.8 * peak for c in high_ratio_cfgs)
    # the ratio grows with node count at a fixed block size
    blocks = sorted({b for b, _ in ratios})
    for b in blocks:
        per_node = [ratios[(b, p)] for (bb, p) in sorted(ratios) if bb == b]
        assert all(y > x for x, y in zip(per_node, per_node[1:]))


def test_table1_overlap(benchmark, full_scale):
    result = benchmark.pedantic(
        lambda: table1_overlap.run(fast=not full_scale),
        rounds=1, iterations=1,
    )
    _check_shape(result)
    print()
    print(result.report())
