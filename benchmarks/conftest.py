"""Benchmark configuration.

Each benchmark regenerates one of the paper's tables/figures (fast
parameter sweeps by default; set REPRO_FULL=1 for the full-scale runs)
and asserts the *shape* of the result — who wins, by roughly what
factor, where crossovers fall — mirroring the claims of the paper.
"""

import os

import pytest


@pytest.fixture(scope="session")
def full_scale() -> bool:
    """True when REPRO_FULL=1: run the paper-scale parameter sweeps."""
    return os.environ.get("REPRO_FULL", "0") == "1"
