"""Benchmark regenerating Table 2: graph-call overhead on a GoL service.

Paper claim: while a client reads randomly-located world blocks through
the exposed graph, call times grow with block size (1.66 ms -> 130 ms),
call rates fall correspondingly (66.8/s -> 6.9/s), and the simulation
iteration slows only moderately — implicit overlap keeps calls cheap.
"""

from repro.experiments import table2_services


def _check_shape(result):
    data = result.data
    blocks = [k for k in data if k != "none"]
    # sort by block area
    blocks.sort(key=lambda k: eval(k.replace("x", "*")))
    calls = [data[b]["call_ms"] for b in blocks]
    rates = [data[b]["cps"] for b in blocks]
    iters = [data[b]["iter_ms"] for b in blocks]
    baseline = data["none"]["iter_ms"]
    # call time grows monotonically with block size, call rate falls
    assert all(b > a for a, b in zip(calls, calls[1:])), calls
    assert all(b < a for a, b in zip(rates, rates[1:])), rates
    # small calls are millisecond-scale and frequent
    assert calls[0] < 5.0
    assert rates[0] > 30.0
    # iterations keep running: the impact stays well under 2x
    assert all(i < 2.0 * baseline for i in iters), (baseline, iters)


def test_table2_graph_calls(benchmark, full_scale):
    result = benchmark.pedantic(
        lambda: table2_services.run(fast=not full_scale),
        rounds=1, iterations=1,
    )
    _check_shape(result)
    print()
    print(result.report())
