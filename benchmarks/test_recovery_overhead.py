"""Fault-free overhead of the recovery machinery (ISSUE 5).

With ``recover=True`` every windowed split emission is journaled, every
non-leaf input consults the dedup table, and acks carry the journal key
— bookkeeping that must be invisible when nothing fails.  The budget is
5%: ring tokens/sec with recovery armed must stay within 95% of the
recovery-off throughput on the same engine build.  A second check
verifies the heartbeat threads alone (on by default) cost nothing
measurable.

Both comparisons need real parallelism (four kernel processes plus a
console), so they are skipped below 4 usable cores.
"""

import os
import time

import pytest

from repro.apps.ring import RingJobToken, build_ring_graph
from repro.runtime import MultiprocessEngine

RING_NODES = ["node01", "node02", "node03", "node04"]
BLOCK_BYTES = 512  # small tokens: per-token bookkeeping dominates
BLOCKS = 400
REPEATS = 3  # best-of-N to shed scheduler noise


def _usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _ring_tokens_per_sec(recover: bool, heartbeat_interval: float = 0.25,
                         blocks: int = BLOCKS) -> float:
    best = 0.0
    for _ in range(REPEATS):
        with MultiprocessEngine(
                recover=recover,
                heartbeat_interval=heartbeat_interval) as engine:
            graph = build_ring_graph(RING_NODES)
            engine.register_graph(graph)
            # warm-up: cluster fork / lazy dials / shm attach
            engine.run(graph, RingJobToken(BLOCK_BYTES, 4), timeout=120)
            t0 = time.perf_counter()
            done = engine.run(graph, RingJobToken(BLOCK_BYTES, blocks),
                              timeout=120)
            elapsed = time.perf_counter() - t0
            assert done.blocks == blocks
            result = engine.last_result
            assert result.recovered is False
            assert result.replayed_tokens == 0
        best = max(best, blocks / elapsed)
    return best


@pytest.mark.skipif(_usable_cpus() < 4,
                    reason="overhead comparison needs >= 4 cores")
def test_recovery_off_vs_on_within_5_percent(capsys):
    """Journal + dedup + journal-keyed acks: <= 5% tokens/sec cost."""
    off = _ring_tokens_per_sec(recover=False)
    on = _ring_tokens_per_sec(recover=True)
    ratio = on / off
    with capsys.disabled():
        print(
            f"\n[recovery-overhead] ring {BLOCK_BYTES} B blocks: "
            f"recover off {off:,.0f} tok/s, on {on:,.0f} tok/s "
            f"({ratio:.3f}x)"
        )
    assert ratio >= 0.95, (
        f"recovery bookkeeping costs {(1 - ratio) * 100:.1f}% tokens/sec "
        f"(budget: 5%)")


@pytest.mark.skipif(_usable_cpus() < 4,
                    reason="overhead comparison needs >= 4 cores")
def test_heartbeats_alone_cost_nothing_measurable(capsys):
    """The liveness lease traffic (4 beats/sec/kernel) must not dent
    throughput: within 5% of a heartbeat-free run."""
    without = _ring_tokens_per_sec(recover=False, heartbeat_interval=0.0)
    with_hb = _ring_tokens_per_sec(recover=False, heartbeat_interval=0.25)
    ratio = with_hb / without
    with capsys.disabled():
        print(
            f"\n[recovery-overhead] heartbeats: off {without:,.0f} tok/s, "
            f"on {with_hb:,.0f} tok/s ({ratio:.3f}x)"
        )
    assert ratio >= 0.95, (
        f"heartbeat traffic costs {(1 - ratio) * 100:.1f}% tokens/sec")
