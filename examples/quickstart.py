#!/usr/bin/env python
"""Quickstart: the paper's tutorial application, step by step.

Builds the split-compute-merge flow graph of section 3 of the paper —
convert a string to uppercase by splitting it into characters — and runs
it twice: on the simulated 4-node cluster (virtual time, deterministic)
and on real OS threads (actual concurrency).

Run:  python examples/quickstart.py
"""

from repro.apps.strings import (
    CharToken,
    ComputeThread,
    MainThread,
    MergeString,
    RoundRobinByPos,
    SplitString,
    StringToken,
    ToUpperCase,
)
from repro.cluster import paper_cluster
from repro.core import ConstantRoute, Flowgraph, FlowgraphNode, ThreadCollection
from repro.runtime import SimEngine
from repro.runtime.threaded_engine import ThreadedEngine
from repro.trace import Tracer, message_summary, op_summary


def build_graph():
    """The Figure 2 flow graph: SplitString >> ToUpperCase >> MergeString.

    Thread collections are mapped dynamically at runtime — the same
    mapping-string syntax as the paper ("nodeA*2 nodeB").
    """
    main = ThreadCollection(MainThread, "main").map("node01")
    workers = ThreadCollection(ComputeThread, "proc").map("node02*2 node03")
    builder = (
        FlowgraphNode(SplitString, main, ConstantRoute)
        >> FlowgraphNode(ToUpperCase, workers, RoundRobinByPos)
        >> FlowgraphNode(MergeString, main, ConstantRoute)
    )
    return Flowgraph(builder, "uppercase")


def main() -> None:
    text = "hello dynamic parallel schedules"

    # --- simulated cluster: virtual time on the paper's testbed model ---
    tracer = Tracer()
    engine = SimEngine(paper_cluster(4), tracer=tracer)
    graph = build_graph()
    result = engine.run(graph, StringToken(text))
    print("simulated cluster")
    print(f"  input  : {text!r}")
    print(f"  output : {result.token.text!r}")
    print(f"  virtual time: {result.makespan * 1e3:.2f} ms")
    metrics = engine.stats()
    print(f"  network: {metrics['network_messages']} messages, "
          f"{metrics['network_bytes']} bytes")
    print()
    print(op_summary(tracer))
    print()
    print(message_summary(tracer))

    # --- real threads: same graph code, actual OS threads -----------------
    with ThreadedEngine() as tengine:
        graph2 = build_graph()
        out = tengine.run(graph2, StringToken(text))
        print()
        print("real-thread engine")
        print(f"  output : {out.text!r}")


if __name__ == "__main__":
    main()
