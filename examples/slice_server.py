#!/usr/bin/env python
"""Out-of-core 3-D volume slice server — the original DPS workload.

The parallel-schedules approach was first validated on out-of-core
parallel access to 3-D volume images and the streaming "beating heart"
slice server (paper §1).  This example distributes a synthetic volume
over four storage nodes and serves orthogonal slices: a streaming viewer
requests a sweep of cross-sections while the service pipelines the
extent reads underneath.

Run:  python examples/slice_server.py
"""

import numpy as np

from repro.apps.volume import DistributedVolume
from repro.cluster import paper_cluster
from repro.runtime import SimEngine
from repro.trace import Tracer, utilization_report


def synthetic_volume(depth=64, rows=64, cols=64) -> np.ndarray:
    """A volume with a bright tilted ellipsoid inside (something to see)."""
    z, y, x = np.mgrid[0:depth, 0:rows, 0:cols].astype(np.float64)
    z, y, x = z - depth / 2, y - rows / 2, x - cols / 2
    r2 = (z / (depth * 0.35)) ** 2 + ((y + z * 0.2) / (rows * 0.25)) ** 2 \
        + (x / (cols * 0.3)) ** 2
    return np.where(r2 < 1.0, 200, 20).astype(np.uint8)


def render(slice2d: np.ndarray, step: int = 2) -> str:
    glyphs = " .:-=+*#%@"
    scaled = (slice2d[::step, ::step].astype(int) * (len(glyphs) - 1)) // 255
    return "\n".join("".join(glyphs[v] for v in row) for row in scaled)


def main() -> None:
    volume = synthetic_volume()
    tracer = Tracer()
    engine = SimEngine(paper_cluster(4), tracer=tracer)
    server = DistributedVolume(engine, volume, engine.cluster.node_names)
    load = server.load()
    print(f"loaded {volume.nbytes >> 10} KiB over 4 storage nodes in "
          f"{load.makespan * 1e3:.1f} ms virtual")

    # a streaming viewer sweeps through y-slices; requests pipeline
    frames = []

    def viewer(sim):
        pending = [server.start_slice(1, y) for y in range(8, 56, 8)]
        for ev in pending:
            result = yield ev
            frames.append(result.token.data.array)

    engine.spawn(viewer(engine.sim), name="viewer")
    t0 = engine.sim.now
    engine.run_to_completion()
    print(f"streamed {len(frames)} cross-sections in "
          f"{(engine.sim.now - t0) * 1e3:.1f} ms virtual "
          f"(pipelined across the extents)\n")

    mid = frames[len(frames) // 2]
    assert np.array_equal(mid, volume[:, 8 + 8 * (len(frames) // 2), :])
    print("middle cross-section (depth x cols):")
    print(render(mid))
    print()
    print(utilization_report(engine))


if __name__ == "__main__":
    main()
