#!/usr/bin/env python
"""Streaming video recomposition — the stream-operation showcase (Fig. 4).

Partial frames stored on a 4-node disk array are recomposed into complete
frames and processed on two compute nodes.  The stream operation forwards
each frame as soon as its parts have arrived; this example contrasts it
with a merge+split barrier that waits for the entire read phase.

Run:  python examples/video_pipeline.py
"""

from repro.apps.video import VideoJob, run_video_pipeline
from repro.cluster import paper_cluster


def main() -> None:
    spec = paper_cluster(6)
    disks = ["node01", "node02", "node03", "node04"]
    procs = ["node05", "node06"]
    job = VideoJob(n_frames=24, frame_bytes=1 << 20, n_parts=4)
    print(f"{job.n_frames} frames of {job.frame_bytes >> 10} KiB, "
          f"{job.n_parts} partial frames each, "
          f"{len(disks)}-disk array, {len(procs)} processing nodes\n")

    stream = run_video_pipeline(spec, job, disks, procs, use_stream=True)
    barrier = run_video_pipeline(spec, job, disks, procs, use_stream=False)
    assert stream.checksum == barrier.checksum  # identical results

    fmt = "{:28} {:>12} {:>16}"
    print(fmt.format("", "makespan", "first frame out"))
    print(fmt.format("stream operation",
                     f"{stream.makespan:.3f} s",
                     f"{stream.first_frame_latency * 1e3:.1f} ms"))
    print(fmt.format("merge+split barrier",
                     f"{barrier.makespan:.3f} s",
                     f"{barrier.first_frame_latency * 1e3:.1f} ms"))
    print(f"\nthe stream starts processing "
          f"{barrier.first_frame_latency / stream.first_frame_latency:.1f}x "
          f"earlier and finishes "
          f"{barrier.makespan / stream.makespan:.2f}x sooner")


if __name__ == "__main__":
    main()
