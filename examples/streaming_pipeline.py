#!/usr/bin/env python
"""Streaming pipelines: bursty source, windows, backpressure, shedding.

Builds a small telemetry pipeline with the first-class stream API
(DESIGN §5i):

    SensorSource >> Smooth (stream stage) >> PerWindowStats >> Report

- ``SensorSource`` is an *unbounded* entry split pacing itself through
  a seeded bursty arrival process — the same schedule in virtual and
  wall time;
- ``Smooth`` shows the callback contract: ``on_token`` emits a running
  average, ``on_close`` flushes a summary reading;
- ``PerWindowStats`` aggregates tumbling 32-reading windows with the
  contiguity watermark, so window results are bit-identical on every
  engine regardless of arrival order.

The example runs the pipeline three times: on the simulated engine, on
real OS threads (identical window checksums), and once more overloaded
behind a tiny lossy credit window to show load shedding.

Run:  python examples/streaming_pipeline.py
"""

from repro import (
    ArrivalProcess,
    ConstantRoute,
    DpsThread,
    Flowgraph,
    FlowgraphNode,
    MergeOperation,
    SimpleToken,
    StreamOperation,
    StreamPolicy,
    StreamSource,
    ThreadCollection,
    WindowSpec,
    WindowedStream,
    create_engine,
)
from repro.trace import MetricsRegistry

WINDOW = 32


class SensorJob(SimpleToken):
    def __init__(self, items=0):
        self.items = items


class Reading(SimpleToken):
    def __init__(self, seq=0, value=0):
        self.seq = seq
        self.value = value


class WindowStats(SimpleToken):
    def __init__(self, window_id=0, count=0, checksum=0, complete=False):
        self.window_id = window_id
        self.count = count
        self.checksum = checksum
        self.complete = complete


class ReportToken(SimpleToken):
    def __init__(self, text=""):
        self.text = text


class MainThread(DpsThread):
    pass


class StageThread(DpsThread):
    pass


class SensorSource(StreamSource):
    """Bursty sensor: ~4000 readings/s in bursts of ~16."""

    in_types = (SensorJob,)
    out_types = (Reading,)

    def arrival_process(self, job):
        return ArrivalProcess(rate=4000.0, burst=16, gap=0.004,
                              items=job.items, seed=7)

    def make_token(self, seq, job):
        return Reading(seq=seq, value=(seq * 37 + 11) % 1000)


class Smooth(StreamOperation):
    """Running average over the last 4 readings (integer arithmetic)."""

    in_types = (Reading,)
    out_types = (Reading,)

    def __init__(self):
        super().__init__()
        self._recent = []

    def on_token(self, tok):
        self._recent = (self._recent + [tok.value])[-4:]
        self.emit(Reading(seq=tok.seq,
                          value=sum(self._recent) // len(self._recent)))

    def on_close(self):
        # trailing flush: one synthetic reading carrying the final mean
        if self._recent:
            self.emit(Reading(seq=10**6,
                              value=sum(self._recent) // len(self._recent)))


class PerWindowStats(WindowedStream):
    in_types = (Reading,)
    out_types = (WindowStats,)
    window = WindowSpec(WINDOW)

    def seq_of(self, tok):
        return tok.seq

    def value_of(self, tok):
        return tok.value

    def make_result(self, w):
        return WindowStats(window_id=w.window_id, count=w.count,
                           checksum=w.checksum, complete=w.complete)


class Report(MergeOperation):
    in_types = (WindowStats,)
    out_types = (ReportToken,)

    def execute(self, tok):
        lines = []
        while tok is not None:
            lines.append(f"  window {tok.window_id:>3}: {tok.count:>3} "
                         f"readings, checksum {tok.checksum % 10**8:08d}"
                         f"{'' if tok.complete else ' (partial)'}")
            tok = yield self.next_token()
        yield self.post(ReportToken("\n".join(sorted(lines))))


def build_graph(name="telemetry"):
    main = ThreadCollection(MainThread, f"{name}-main").map("node01")
    smooth = ThreadCollection(StageThread, f"{name}-smooth").map("node02")
    agg = ThreadCollection(StageThread, f"{name}-agg").map("node03")
    builder = (
        FlowgraphNode(SensorSource, main, name="sensor")
        >> FlowgraphNode(Smooth, smooth, ConstantRoute, name="smooth")
        >> FlowgraphNode(PerWindowStats, agg, ConstantRoute, name="windows")
        >> FlowgraphNode(Report, main, name="report")
    )
    return Flowgraph(builder, name)


def main() -> None:
    items = 160

    # --- simulated engine: virtual time, deterministic -----------------
    with create_engine("sim", nodes=4) as engine:
        sim = engine.run(build_graph(), SensorJob(items))
    print(f"simulated engine ({items} readings, windows of {WINDOW}):")
    print(sim.token.text)
    print(f"  virtual time: {sim.makespan * 1e3:.1f} ms")
    print()

    # --- real threads: same windows, bit-identical checksums -----------
    with create_engine("threaded") as engine:
        threaded = engine.run(build_graph("telemetry-t"), SensorJob(items))
    print("threaded engine: windows "
          + ("bit-identical" if threaded.text == sim.token.text
             else "DIFFER (bug!)"))
    print()

    # --- overload a tiny lossy window: backpressure sheds ---------------
    metrics = MetricsRegistry()
    policy = StreamPolicy(credit_window=4, shedding="shed",
                          edge_credits={"smooth": None, "windows": None})
    with create_engine("sim", nodes=4, stream=policy,
                       metrics=metrics) as engine:
        shed_run = engine.run(build_graph("telemetry-s"), SensorJob(items))
    shed = metrics.counter("tokens_shed").value
    kept = items - shed
    print(f"overloaded source behind credit_window=4, shedding='shed': "
          f"{shed} of {items} readings shed, {kept} aggregated")
    print(shed_run.token.text)


if __name__ == "__main__":
    main()
