#!/usr/bin/env python
"""Dynamic resource reallocation on a shared cluster (paper §2/§6).

The paper motivates DPS's dynamicity with server clusters "whose
resources must be reassigned according to the needs of dynamically
scheduled applications".  This example runs a Game of Life on
two nodes of an 8-node cluster; when another tenant claims those
machines, the application vacates them at runtime: the worker
collections remap onto two free nodes, with the distributed world bands
migrating over the network.  Moving only the workers leaves the master
thread behind — synchronization turns remote and iterations slow down —
so the master follows, restoring the original performance.  Everything
stays correct throughout.

Run:  python examples/server_reshaping.py
"""

import numpy as np

from repro.apps.gameoflife import DistributedGameOfLife, life_step
from repro.cluster import paper_cluster
from repro.runtime import SimEngine


def mean_iteration(gol, iters=3):
    return sum(gol.step(improved=True).makespan for _ in range(iters)) / iters


def main() -> None:
    rng = np.random.default_rng(11)
    world = (rng.random((1200, 1200)) < 0.35).astype(np.uint8)
    engine = SimEngine(paper_cluster(8, flops=200e6))

    # phase 1: the service shares two nodes with other tenants
    gol = DistributedGameOfLife(engine, world, ["node01", "node02"])
    gol.load()
    gol.step(improved=True)  # warm-up
    t_small = mean_iteration(gol)
    print(f"2 nodes : {t_small * 1e3:7.2f} ms per iteration")

    # phase 2: node01/node02 are reclaimed -> vacate the workers
    new_nodes = ["node05", "node06"]
    r1 = engine.remap(gol._exchange, new_nodes)
    r2 = engine.remap(gol._compute, new_nodes)
    print(f"remap   : moved {r1['migrated'] + r2['migrated']} threads, "
          f"{(r1['bytes'] + r2['bytes']) / 1e6:.2f} MB of state, "
          f"{(r1['duration'] + r2['duration']) * 1e3:.1f} ms")

    t_moved = mean_iteration(gol)
    print(f"workers : {t_moved * 1e3:7.2f} ms per iteration "
          f"(master still on node01: synchronization got remote)")
    assert t_moved > t_small

    # phase 3: the master follows its workers -> locality restored
    engine.remap(gol._master, ["node05"])
    t_final = mean_iteration(gol)
    print(f"master  : {t_final * 1e3:7.2f} ms per iteration "
          f"(master co-located again)")
    assert t_final < t_moved

    # verify nothing was lost in flight
    iterations = gol.iteration
    expected = world
    for _ in range(iterations):
        expected = life_step(expected)
    assert np.array_equal(gol.gather(), expected)
    print(f"verified after {iterations} iterations and 3 remaps")


if __name__ == "__main__":
    main()
