#!/usr/bin/env python
"""Multiprocess ring: real kernel processes forwarding tokens over TCP.

The paper's communication experiment (Figure 6) sends payload blocks
around a ring of machines.  This example runs the same flow graph —
``split >> forward >> forward >> forward >> merge`` — on the
:class:`~repro.runtime.MultiprocessEngine`: one OS *process* per ring
node, a TCP name server for discovery, and lazy peer connections carrying
tokens in the zero-copy wire format.  Every block really crosses four
process boundaries per round trip.

Run:  python examples/multiprocess_ring.py
"""

import time

from repro.apps.ring import RingJobToken, build_ring_graph
from repro.runtime import MultiprocessEngine

BLOCK_BYTES = 64 * 1024
N_BLOCKS = 64
NODES = ["node01", "node02", "node03", "node04"]


def main() -> None:
    graph = build_ring_graph(NODES)
    with MultiprocessEngine() as engine:
        engine.register_graph(graph)

        # First activation pays the cluster start-up: forking the kernel
        # processes, name-server registration and lazy TCP dialing.
        t0 = time.perf_counter()
        engine.run(graph, RingJobToken(1024, 4))
        print(f"cluster up (kernels: {', '.join(engine.kernel_names)}) "
              f"in {time.perf_counter() - t0:.2f} s")

        # Steady state: the measured transfer.
        t0 = time.perf_counter()
        done = engine.run(graph, RingJobToken(BLOCK_BYTES, N_BLOCKS))
        wall = time.perf_counter() - t0

    total_mb = done.received_bytes / 1e6
    print(f"forwarded {done.blocks} x {BLOCK_BYTES // 1024} KiB blocks "
          f"around {len(NODES)} kernel processes")
    print(f"{total_mb:.1f} MB in {wall:.2f} s "
          f"= {total_mb / wall:.1f} MB/s per hop")


if __name__ == "__main__":
    main()
