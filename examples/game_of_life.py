#!/usr/bin/env python
"""Distributed Game of Life with a live visualization client.

Runs the paper's flagship application (section 5) on a simulated 4-node
cluster: the world is band-distributed, iterations use the improved flow
graph (border exchange overlapped with the center computation), and a
separate client application reads world blocks through the exposed
parallel-service graph while the simulation keeps iterating (Figure 10).

Run:  python examples/game_of_life.py
"""

import numpy as np

from repro.apps.gameoflife import life_step
from repro.apps.gol_service import GameOfLifeService
from repro.cluster import paper_cluster
from repro.runtime import SimEngine


def glider_world(rows: int = 48, cols: int = 64) -> np.ndarray:
    """A world seeded with a few gliders plus random noise."""
    rng = np.random.default_rng(2003)
    world = (rng.random((rows, cols)) < 0.08).astype(np.uint8)
    glider = np.array([[0, 1, 0], [0, 0, 1], [1, 1, 1]], dtype=np.uint8)
    for r, c in ((2, 2), (10, 30), (30, 12)):
        world[r : r + 3, c : c + 3] = glider
    return world


def render(block: np.ndarray) -> str:
    return "\n".join("".join("#" if v else "." for v in row) for row in block)


def main() -> None:
    world = glider_world()
    engine = SimEngine(paper_cluster(4, flops=200e6))
    gol = GameOfLifeService(engine, world, engine.cluster.node_names)
    gol.load()

    # a visualization client polling a 12x40 window via the read graph,
    # concurrently with the iterations (driver process in virtual time)
    snapshots = []

    def viz_client(sim):
        for _ in range(6):
            result = yield gol.start_read(0, 0, 12, 40)
            snapshots.append((sim.now, result.token.data.array))
            yield sim.timeout(0.002)

    engine.spawn(viz_client(engine.sim), name="viz")

    reference = world
    for i in range(8):
        r = gol.step(improved=True)
        reference = life_step(reference)
        print(f"iteration {i + 1}: {r.makespan * 1e3:6.2f} ms virtual")
    engine.run_to_completion()

    final = gol.gather()
    assert np.array_equal(final, reference), "distributed result diverged!"
    print(f"\nresult verified against the reference stepping "
          f"({final.sum()} live cells)")
    print(f"\nviz client captured {len(snapshots)} frames while iterating;"
          f" last frame (12x40 window):")
    print(render(snapshots[-1][1]))


if __name__ == "__main__":
    main()
