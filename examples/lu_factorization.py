#!/usr/bin/env python
"""Distributed block LU factorization with dynamic graph construction.

The paper's most intricate example (section 5): the flow graph is built
at runtime to fit the matrix — one pipelined "gray segment" per block
column (Figure 12) — and stream operations let the next panel
factorization start before the previous stage's multiplications have all
finished (Figure 13).

This example factors a 256×256 matrix on 4 simulated nodes, verifies
P·A = L·U, solves a linear system through the factors, and compares the
pipelined graph against the merge+split barrier variant.

Run:  python examples/lu_factorization.py
"""

import numpy as np
from scipy.linalg import solve_triangular

from repro.apps.lu import DistributedLU
from repro.cluster import paper_cluster
from repro.runtime import SimEngine


def factor(pipelined: bool, a: np.ndarray):
    engine = SimEngine(paper_cluster(4, flops=80e6))
    lu = DistributedLU(
        engine, a, s=8, worker_nodes=engine.cluster.node_names,
        pipelined=pipelined,
        scale=8.0,  # price the run as if the matrix were 2048x2048
    )
    lu.load()
    result = lu.run()
    return lu, result


def main() -> None:
    rng = np.random.default_rng(7)
    n = 256
    a = rng.standard_normal((n, n)) + n * np.eye(n)

    lu, res_pipe = factor(True, a)
    print(f"pipelined factorization : {res_pipe.makespan:8.2f} s virtual "
          f"(graph: {len(lu.lu_graph.node_ids)} nodes, built dynamically)")
    assert lu.check(), "P*A != L*U"
    print("verified: P*A = L*U")

    # solve A x = b through the distributed factors
    order, l, u = lu.factors()
    b = rng.standard_normal(n)
    y = solve_triangular(l, b[order], lower=True, unit_diagonal=True)
    x = solve_triangular(u, y)
    print(f"solve residual |Ax-b| = {np.abs(a @ x - b).max():.2e}")

    _, res_barrier = factor(False, a)
    print(f"barrier variant         : {res_barrier.makespan:8.2f} s virtual")
    print(f"stream-operation pipelining wins by "
          f"{res_barrier.makespan / res_pipe.makespan:.2f}x "
          f"(the Figure 15 effect)")


if __name__ == "__main__":
    main()
