#!/usr/bin/env python
"""A/B the wire-codec fast path and the event-loop flush window.

ISSUE 9 adds two transport knobs, both reachable from the CLI surface
(``repro-cli run --codec ... --flush-delay-us ...``) and from
:class:`~repro.net.TransportPolicy`:

- ``codec``: ``pure`` forces the reference pure-Python visitor;
  ``fast``/``auto`` take per-token-type plans plus the optional
  compiled ``_wirec`` extension.  Wire bytes are bit-identical either
  way — the fast path is purely a CPU saving.
- ``flush_delay_us``: ``0`` (default) coalesces frames only at the
  event loop's quiescent points (free); ``> 0`` additionally arms a
  Nagle-style timer window that trades round-trip latency for fewer,
  fuller syscalls.  Control frames always bypass it.

This example runs the same small-token ring under each configuration
and prints throughput plus the transport's own evidence: the
``codec_fast_path`` counter and the ``frames_per_syscall`` histogram.
On flow-control-bound traffic expect the fast codec to win and the
timer window to *lose* — which is exactly why its default is 0; see
DESIGN.md §5h for the measured discussion.

Run:  python examples/codec_ab.py [--blocks N] [--flush-delay-us US]
"""

import argparse
import time

from repro.apps.ring import RingJobToken, build_ring_graph
from repro.net import TransportPolicy
from repro.runtime import MultiprocessEngine
from repro.serial import fastpath
from repro.trace import MetricsRegistry

NODES = ["node01", "node02", "node03", "node04"]


def run_config(label: str, policy: TransportPolicy, *,
               blocks: int, block_bytes: int) -> None:
    metrics = MetricsRegistry()
    graph = build_ring_graph(NODES)
    with MultiprocessEngine(transport=policy, metrics=metrics) as engine:
        engine.register_graph(graph)
        engine.run(graph, RingJobToken(block_bytes, 4))  # warm-up
        t0 = time.perf_counter()
        done = engine.run(graph, RingJobToken(block_bytes, blocks))
        wall = time.perf_counter() - t0
        assert done.blocks == blocks
        engine.collect_traces()
    counters = metrics.snapshot().get("counters", {})
    fps = metrics.histogram("frames_per_syscall")
    print(f"  {label:<28} {blocks / wall:7.0f} tok/s   "
          f"codec_fast_path={counters.get('codec_fast_path', 0):<6} "
          f"flush_window_hits={counters.get('flush_window_hits', 0):<4} "
          f"frames/syscall="
          f"{fps.total / fps.count if fps.count else 0.0:.2f}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--blocks", type=int, default=200)
    parser.add_argument("--block-bytes", type=int, default=512)
    parser.add_argument("--flush-delay-us", type=int, default=200,
                        help="timer window for the windowed configuration")
    args = parser.parse_args()

    print(f"compiled codec available: {fastpath.compiled_available()} "
          f"(in use: {fastpath.codec_in_use()})")
    print(f"ring: {args.blocks} x {args.block_bytes} B over "
          f"{len(NODES)} kernel processes\n")

    configs = [
        ("codec=pure, no window",
         TransportPolicy(codec="pure", flush_delay_us=0)),
        ("codec=fast, no window",
         TransportPolicy(codec="fast", flush_delay_us=0)),
        (f"codec=fast, {args.flush_delay_us} us window",
         TransportPolicy(codec="fast",
                         flush_delay_us=args.flush_delay_us)),
    ]
    for label, policy in configs:
        run_config(label, policy, blocks=args.blocks,
                   block_bytes=args.block_bytes)


if __name__ == "__main__":
    main()
